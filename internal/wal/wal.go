// Package wal is a segmented append-only write-ahead log of opaque
// binary frames, the durability substrate under internal/ingest's
// streaming engine. It stores what the paper's monitoring pipeline
// cannot afford to lose: seven months of continuously accumulated
// observations, which a process restart would otherwise erase.
//
// # Format
//
// A log is a directory of segment files named wal-<firstseq>.seg,
// where <firstseq> is the sequence number of the segment's first
// frame. Each frame is
//
//	uint32 LE  payload length
//	uint32 LE  CRC32-C (Castagnoli) of the payload
//	payload bytes
//
// Sequence numbers start at 1 and are implicit: frame i of a segment
// with base b has sequence b+i. There is no in-frame seq field to
// corrupt or skew — the name plus the position is the number.
//
// # Crash safety
//
// Appends go to the active (last) segment; rotation seals it and opens
// a new one. A crash can leave a torn frame at the tail of the active
// segment; Open scans every segment front to back and truncates the
// log at the first invalid frame (bad length, short payload, CRC
// mismatch), deleting any later segments — the recovered log is always
// a clean prefix of what was appended. Under SyncEachAppend a frame is
// fsynced before Append returns, so an acknowledged append survives
// SIGKILL; the softer policies trade that guarantee for throughput and
// bound the loss to the sync interval (or the OS flush horizon).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"swarmavail/internal/obs"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appended frames are fsynced to stable
// storage.
type SyncPolicy uint8

const (
	// SyncEachAppend fsyncs before Append returns: an acknowledged
	// append survives power loss. The default, and the policy the
	// zero-acked-loss crash tests assume.
	SyncEachAppend SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// a crash loses at most the last interval of acknowledged appends.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes when it pleases.
	SyncNone
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "off"
	default:
		return "batch"
	}
}

// ParseSyncPolicy converts a -fsync flag value ("batch", "interval",
// "off") to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "batch", "always", "each":
		return SyncEachAppend, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none", "never":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval or off)", s)
}

// Options parameterises Open. The zero value selects per-append fsync
// and 64 MiB segments.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that finds the
	// active segment at or past it seals the segment first
	// (default 64 MiB).
	SegmentBytes int64
	// Policy selects the fsync policy (default SyncEachAppend).
	Policy SyncPolicy
	// SyncEvery is the background fsync cadence under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// FsyncSeconds, when set, observes the duration of every fsync
	// (wal_fsync_seconds). Nil-safe, like all obs instruments.
	FsyncSeconds *obs.Histogram
	// SegmentBytesGauge, when set, tracks the active segment's size
	// (wal_segment_bytes).
	SegmentBytesGauge *obs.Gauge
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// segment is one on-disk segment file.
type segment struct {
	base   uint64 // sequence number of the first frame
	frames uint64 // valid frames in the file
	size   int64  // bytes of valid frames
	path   string
}

func (s segment) lastSeq() uint64 { return s.base + s.frames - 1 }

// OpenStats reports what Open found and repaired.
type OpenStats struct {
	// Segments is the number of segment files kept.
	Segments int
	// Frames is the number of valid frames across them.
	Frames uint64
	// TruncatedBytes counts bytes cut from a torn or corrupt tail.
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded because an
	// earlier segment's corruption invalidated everything after it.
	DroppedSegments int
}

// Log is an open write-ahead log. Append/Sync/TruncateThrough are safe
// for concurrent use; Replay must not run concurrently with Append.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	active  segment
	sealed  []segment
	nextSeq uint64
	buf     []byte // frame assembly scratch
	closed  bool

	stop chan struct{} // interval syncer shutdown
	done chan struct{}
}

// Open opens (creating if needed) the log in dir, repairing any torn
// tail left by a crash: the log is truncated at the first invalid
// frame and later segments are deleted, so what remains is a clean
// prefix of the appended frames.
func Open(dir string, opts Options) (*Log, OpenStats, error) {
	opts = opts.withDefaults()
	var st OpenStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, st, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, st, err
	}

	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	valid := true
	// The first segment anchors the sequence space: a checkpoint may
	// have dropped every earlier segment (TruncateThrough), so the log
	// legitimately starts at any base. Continuity is enforced from that
	// anchor on.
	expectBase := uint64(0)
	for _, seg := range segs {
		if !valid || (expectBase != 0 && seg.base != expectBase) {
			// Everything after a repaired (or missing) segment is
			// unreachable log space: drop it.
			if err := os.Remove(seg.path); err != nil {
				return nil, st, err
			}
			st.DroppedSegments++
			valid = false
			continue
		}
		frames, size, total, err := scanSegment(seg.path)
		if err != nil {
			return nil, st, err
		}
		if size < total {
			if err := os.Truncate(seg.path, size); err != nil {
				return nil, st, err
			}
			st.TruncatedBytes += total - size
			valid = false // later segments are beyond the repair point
		}
		seg.frames, seg.size = frames, size
		if frames == 0 {
			// A fully-torn (or empty) segment: remove the husk.
			if err := os.Remove(seg.path); err != nil {
				return nil, st, err
			}
			continue
		}
		l.sealed = append(l.sealed, seg)
		expectBase = seg.lastSeq() + 1
	}
	for _, seg := range l.sealed {
		st.Frames += seg.frames
	}
	if n := len(l.sealed); n > 0 {
		l.nextSeq = l.sealed[n-1].lastSeq() + 1
		// Reopen the newest segment for appending.
		l.active = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		f, err := os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, st, err
		}
		l.f = f
	}
	st.Segments = len(l.sealed)
	if l.f != nil {
		st.Segments++
	}
	opts.SegmentBytesGauge.Set(float64(l.active.size))

	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, st, nil
}

// listSegments returns dir's segment files sorted by base sequence.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
		if err != nil || base == 0 {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// scanSegment walks path frame by frame and returns the count and byte
// length of the valid prefix, plus the file's total size.
func scanSegment(path string) (frames uint64, validSize, totalSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	totalSize = info.Size()
	r := &frameReader{r: f}
	for {
		payload, err := r.next()
		if err != nil {
			// io.EOF, a torn tail, or corruption: the valid prefix ends
			// here either way; the caller truncates to validSize.
			return frames, validSize, totalSize, nil
		}
		frames++
		validSize += int64(frameHeaderSize + len(payload))
	}
}

// segmentPath names the segment whose first frame has sequence base.
func (l *Log) segmentPath(base uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%016d.seg", base))
}

// Append writes one frame and returns its sequence number. Under
// SyncEachAppend the frame is on stable storage when Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > MaxFrameBytes {
		return 0, fmt.Errorf("wal: payload size %d out of range (1..%d)", len(payload), MaxFrameBytes)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.f != nil && l.active.size >= l.opts.SegmentBytes {
		if err := l.sealLocked(); err != nil {
			return 0, err
		}
	}
	if l.f == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}
	l.buf = AppendFrame(l.buf[:0], payload)
	if _, err := l.f.Write(l.buf); err != nil {
		// The tail may now be torn; the next Open repairs it. Poison
		// nothing — the caller decides whether to retry or fail.
		return 0, err
	}
	l.active.size += int64(len(l.buf))
	l.active.frames++
	seq := l.nextSeq
	l.nextSeq++
	l.opts.SegmentBytesGauge.Set(float64(l.active.size))
	if l.opts.Policy == SyncEachAppend {
		if err := l.fsyncLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// fsyncLocked syncs the active segment, timing the call.
func (l *Log) fsyncLocked() error {
	if l.f == nil {
		return nil
	}
	start := time.Now()
	err := l.f.Sync()
	l.opts.FsyncSeconds.Observe(time.Since(start).Seconds())
	return err
}

// Sync forces the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.fsyncLocked()
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.fsyncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// sealLocked syncs and closes the active segment, moving it to the
// sealed list.
func (l *Log) sealLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.fsyncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	if l.active.frames > 0 {
		l.sealed = append(l.sealed, l.active)
	} else if err := os.Remove(l.active.path); err != nil {
		return err
	}
	l.active = segment{}
	return nil
}

// openSegmentLocked starts a fresh active segment at nextSeq.
func (l *Log) openSegmentLocked() error {
	path := l.segmentPath(l.nextSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.active = segment{base: l.nextSeq, path: path}
	l.opts.SegmentBytesGauge.Set(0)
	return syncDir(l.dir)
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence number of the newest appended frame
// (0 when the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// FirstSeq returns the sequence number of the oldest frame still on
// disk, or 0 when the log holds no frames (empty, or fully truncated by
// a checkpoint). Together with LastSeq it bounds what Tail can serve: a
// reader asking for a sequence below FirstSeq must bootstrap from a
// checkpoint instead.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sealed) > 0 {
		return l.sealed[0].base
	}
	if l.f != nil && l.active.frames > 0 {
		return l.active.base
	}
	return 0
}

// Segments returns the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.sealed)
	if l.f != nil {
		n++
	}
	return n
}

// Replay streams every frame with sequence ≥ fromSeq, in order, to fn.
// A non-nil error from fn aborts the replay and is returned. Replay
// must not run concurrently with Append.
func (l *Log) Replay(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	return l.Tail(fromSeq, fn)
}

// Tail streams every frame with sequence ≥ fromSeq that existed when the
// call was made, in order, to fn. Unlike Replay's contract, Tail is safe
// to run concurrently with Append: it snapshots the segment list (and
// the active segment's valid length) under the lock, then reads only
// that prefix — frames appended afterwards are simply not served, and a
// torn tail beyond the snapshot is never touched. This is the WAL-
// shipping read path: a follower polls Tail-backed HTTP responses while
// the leader keeps appending.
//
// A segment deleted mid-read (checkpoint truncation racing the tail)
// surfaces as a file-open error; callers that poll should treat it as a
// cue to re-check FirstSeq and bootstrap from a checkpoint if a gap
// opened.
func (l *Log) Tail(fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := make([]segment, 0, len(l.sealed)+1)
	segs = append(segs, l.sealed...)
	if l.f != nil {
		segs = append(segs, l.active)
	}
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.frames == 0 || seg.lastSeq() < fromSeq {
			continue
		}
		if err := replaySegment(seg, fromSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(seg segment, fromSeq uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := &frameReader{r: io.LimitReader(f, seg.size)}
	for i := uint64(0); i < seg.frames; i++ {
		payload, err := r.next()
		if err != nil {
			return fmt.Errorf("wal: segment %s frame %d: %w", filepath.Base(seg.path), i, err)
		}
		if seq := seg.base + i; seq >= fromSeq {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateThrough drops every whole segment whose frames all have
// sequence ≤ seq — the checkpointer's "journal up to seq is now
// redundant" call. The active segment is sealed first if it qualifies,
// so a checkpoint of the full log empties it.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.f != nil && l.active.frames > 0 && l.active.lastSeq() <= seq {
		if err := l.sealLocked(); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	removed := false
	for _, s := range l.sealed {
		if s.lastSeq() <= seq {
			if err := os.Remove(s.path); err != nil {
				return err
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// AdvanceTo raises the log's next sequence number to at least seq+1,
// dropping any segments made redundant on the way (everything ≤ seq).
// Recovery uses it after loading a checkpoint at seq: even if the
// journal tail was lost or repaired away, future appends must never
// reuse a sequence number the checkpoint already covers, or a later
// recovery would skip them as replayed history.
func (l *Log) AdvanceTo(seq uint64) error {
	if err := l.TruncateThrough(seq); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.nextSeq > seq {
		return nil
	}
	// nextSeq ≤ seq means every surviving frame had sequence ≤ seq, so
	// TruncateThrough removed every sealed segment; only an empty active
	// segment can remain. Retire it so the next append opens a segment
	// whose name matches the advanced sequence.
	if l.f != nil {
		if err := l.sealLocked(); err != nil {
			return err
		}
	}
	l.nextSeq = seq + 1
	return nil
}

// TruncateFrom discards every frame with sequence ≥ seq — the recovery
// path's response to a frame whose envelope is valid but whose payload
// fails to decode: cut the log there so later boots see the same clean
// prefix this one replayed.
func (l *Log) TruncateFrom(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq >= l.nextSeq {
		return nil
	}
	// Seal the active segment so every segment is handled uniformly.
	if l.f != nil {
		if err := l.sealLocked(); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		switch {
		case s.lastSeq() < seq:
			kept = append(kept, s)
		case s.base >= seq:
			if err := os.Remove(s.path); err != nil {
				return err
			}
		default:
			// The cut lands inside this segment: truncate it at the
			// boundary frame.
			keep := seq - s.base // frames to keep
			size, err := frameOffset(s, keep)
			if err != nil {
				return err
			}
			if err := os.Truncate(s.path, size); err != nil {
				return err
			}
			s.frames, s.size = keep, size
			if s.frames == 0 {
				if err := os.Remove(s.path); err != nil {
					return err
				}
			} else {
				kept = append(kept, s)
			}
		}
	}
	l.sealed = kept
	l.nextSeq = seq
	return syncDir(l.dir)
}

// frameOffset returns the byte offset of frame index n in seg.
func frameOffset(seg segment, n uint64) (int64, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var off int64
	var hdr [frameHeaderSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return 0, err
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if _, err := f.Seek(length, io.SeekCurrent); err != nil {
			return 0, err
		}
		off += frameHeaderSize + length
	}
	return off, nil
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.f != nil {
		err = l.fsyncLocked()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable. Best effort: some platforms/filesystems reject it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
