package core

import (
	"math"
	"testing"
)

// §3.3.1 extends Lemma 3.1 to skewed (Zipf) preferences: with aggregate
// demand Λ split as p_k = c/k^δ and bundle service scaling as K·s/μ, the
// busy period still grows as e^{Θ(K²)}. These tests exercise ZipfBundle
// against that claim.

func TestZipfBundleBusyPeriodScaling(t *testing.T) {
	// Aggregate demand fixed per file (Λ = K·λ̄): doubling-difference
	// ratio of log E[B] must approach 4.
	exponent := func(k int) float64 {
		_, bundle := ZipfBundle(k, 0.01*float64(k), 0.8, 15, 1, 0.0005, 100, 0.0005, 100)
		eb := bundle.BusyPeriod()
		if math.IsInf(eb, 1) {
			return math.Inf(1)
		}
		return math.Log(eb)
	}
	e8 := exponent(8)
	e16 := exponent(16)
	e32 := exponent(32)
	if math.IsInf(e32, 1) {
		t.Skip("saturated before asymptotic regime")
	}
	ratio := (e32 - e16) / (e16 - e8)
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("Zipf bundle log-busy-period doubling ratio %v, want ≈4", ratio)
	}
}

func TestZipfBundleMatchesHomogeneousAtDeltaZero(t *testing.T) {
	// δ=0 makes all files equally popular: the Zipf bundle must equal
	// the homogeneous Bundle construction exactly.
	k := 5
	lambda := 0.02
	singles, bundle := ZipfBundle(k, lambda, 0, 100, 1, 0.001, 50, 0.001, 50)
	for i, s := range singles {
		if math.Abs(s.Lambda-lambda/float64(k)) > 1e-12 {
			t.Fatalf("single %d λ=%v, want uniform %v", i, s.Lambda, lambda/float64(k))
		}
	}
	homoSingle := SwarmParams{Lambda: lambda / float64(k), Size: 100, Mu: 1, R: 0.001, U: 50}
	homo := homoSingle.Bundle(k, ConstantPublisher)
	if math.Abs(bundle.Lambda-homo.Lambda) > 1e-12 || math.Abs(bundle.Size-homo.Size) > 1e-12 {
		t.Fatalf("δ=0 bundle %+v vs homogeneous %+v", bundle, homo)
	}
	if math.Abs(bundle.BusyPeriod()-homo.BusyPeriod()) > 1e-9*homo.BusyPeriod() {
		t.Fatal("busy periods differ at δ=0")
	}
}

func TestZipfUnpopularTailGainsMost(t *testing.T) {
	// Within a Zipf bundle, every peer gets the bundle's download time;
	// the comparison against each solo swarm shows the tail gains most.
	singles, bundle := ZipfBundle(6, 0.05, 1.0, 4000, 50, 0.0005, 300, 0.0005, 300)
	bundleT := bundle.DownloadTime()
	prevGain := math.Inf(-1)
	for i, s := range singles {
		gain := s.DownloadTime() - bundleT
		if gain < prevGain-1e-9 {
			t.Fatalf("gain not increasing down the popularity tail at %d", i)
		}
		prevGain = gain
	}
	// The least popular file must strictly benefit.
	last := singles[len(singles)-1]
	if last.DownloadTime() <= bundleT {
		t.Fatalf("tail file solo %v not worse than bundle %v", last.DownloadTime(), bundleT)
	}
}

func TestZipfBundleUnavailabilityBelowEverySingle(t *testing.T) {
	singles, bundle := ZipfBundle(4, 0.02, 1.2, 4000, 50, 0.001, 300, 0.001, 300)
	bp := bundle.Unavailability()
	for i, s := range singles {
		if bp > s.Unavailability()+1e-12 {
			t.Fatalf("bundle unavailability %v above single %d's %v", bp, i, s.Unavailability())
		}
	}
}
