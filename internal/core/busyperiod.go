package core

import (
	"fmt"
	"math"
)

// Numerical policy shared by the series evaluations in this package: all
// infinite series have terms updated iteratively (never naked factorials),
// are truncated on a 1e-15 relative-increment cutoff once past the term
// peak, and saturate to +Inf rather than overflowing. Busy periods grow
// as e^{Θ(K²)} under bundling, so +Inf is a legitimate, meaningful result:
// the availability formulas treat it as "the swarm is self-sustaining"
// (unavailability → 0).
const (
	seriesRelTol  = 1e-15
	seriesMaxIter = 200000
)

// BusyPeriodExceptional evaluates eq. (9): the expected busy period of an
// M/G/∞ queue where
//
//   - customers arrive at Poisson rate beta during the busy period,
//   - the customer initiating the busy period has an exponential
//     residence time with mean theta (the "exceptional" first customer —
//     in the paper, a publisher with residence u),
//   - every other customer draws its residence from a two-point
//     exponential mixture: mean alpha1 with probability q1 (a peer
//     downloading for s/μ) and mean alpha2 with probability 1−q1
//     (another publisher staying u).
//
// The result saturates to +Inf when the series exceeds float64 range.
func BusyPeriodExceptional(beta, theta, alpha1, alpha2, q1 float64) float64 {
	switch {
	case beta < 0 || math.IsNaN(beta):
		panic(fmt.Sprintf("core: invalid arrival rate beta=%v", beta))
	case theta <= 0 || math.IsNaN(theta):
		panic(fmt.Sprintf("core: invalid initiator residence theta=%v", theta))
	case q1 < 0 || q1 > 1 || math.IsNaN(q1):
		panic(fmt.Sprintf("core: invalid mixture weight q1=%v", q1))
	case q1 > 0 && (alpha1 <= 0 || math.IsNaN(alpha1)):
		panic(fmt.Sprintf("core: invalid peer residence alpha1=%v", alpha1))
	case q1 < 1 && (alpha2 <= 0 || math.IsNaN(alpha2)):
		panic(fmt.Sprintf("core: invalid publisher residence alpha2=%v", alpha2))
	}
	if beta == 0 {
		// No arrivals: the busy period is exactly the initiator's stay.
		return theta
	}

	// Rewrite the inner sum as a binomial expectation:
	//   Σ_j C(i,j) (q1·α1)^j (q2·α2)^{i−j} w_j
	//     = (q1·α1 + q2·α2)^i · E_{j∼Bin(i,p)}[w_j]
	// with p = q1·α1/(q1·α1+q2·α2) and
	//   w_j = θ·α1·α2 / (α1·α2 + θ·(j·α2 + (i−j)·α1)),
	// which is bounded by θ, so the outer series behaves like
	// Σ (β·ᾱ)^i/i! — e^{β·ᾱ} up to slowly varying factors.
	x := q1 * alpha1
	y := (1 - q1) * alpha2
	abar := x + y
	if abar == 0 {
		return theta
	}
	p := x / abar

	w := func(i, j int) float64 {
		// Effective alphas: when a class has zero weight its alpha may be
		// unset; the corresponding j never selects it because p is 0 or 1.
		a1, a2 := alpha1, alpha2
		if q1 == 0 {
			a1 = 1 // unused: j is always 0
		}
		if q1 == 1 {
			a2 = 1 // unused: j is always i
		}
		den := a1*a2 + theta*(float64(j)*a2+float64(i-j)*a1)
		return theta * a1 * a2 / den
	}

	z := beta * abar
	sum := 0.0
	zi := 1.0 // z^i / i!
	for i := 1; i <= seriesMaxIter; i++ {
		zi *= z / float64(i)
		if math.IsInf(zi, 1) {
			return math.Inf(1)
		}
		ew := binomialExpectation(i, p, func(j int) float64 { return w(i, j) })
		inc := zi * ew
		sum += inc
		if math.IsInf(sum, 1) {
			return math.Inf(1)
		}
		if float64(i) > z && inc < seriesRelTol*sum {
			break
		}
	}
	return theta + sum
}

// binomialExpectation returns E[f(J)] for J ∼ Binomial(i, p), evaluating
// the pmf in log space over a ±10σ window around the mean (f must be
// bounded; truncation error is then negligible).
func binomialExpectation(i int, p float64, f func(j int) float64) float64 {
	if p <= 0 {
		return f(0)
	}
	if p >= 1 {
		return f(i)
	}
	mean := float64(i) * p
	sd := math.Sqrt(float64(i) * p * (1 - p))
	lo := int(mean - 10*sd - 2)
	hi := int(mean + 10*sd + 2)
	if lo < 0 {
		lo = 0
	}
	if hi > i {
		hi = i
	}
	lgi, _ := math.Lgamma(float64(i) + 1)
	lp, lq := math.Log(p), math.Log1p(-p)
	var sum, mass float64
	for j := lo; j <= hi; j++ {
		lj, _ := math.Lgamma(float64(j) + 1)
		lij, _ := math.Lgamma(float64(i-j) + 1)
		pm := math.Exp(lgi - lj - lij + float64(j)*lp + float64(i-j)*lq)
		sum += pm * f(j)
		mass += pm
	}
	if mass == 0 {
		return 0
	}
	// Renormalise over the window so that the (tiny) truncated tails do
	// not bias the expectation of a bounded f.
	return sum / mass
}

// BusyPeriodExceptionalGeneral evaluates eq. (18): homogeneous
// exponential(alpha) residence for all customers except the initiator,
// whose residence has Laplace transform h. Used for sensitivity analyses
// with non-exponential initiators (e.g. the hypoexponential virtual
// customer of Lemma 3.3) and for testing eq. (9) against its ancestor.
//
//	E[B] = θ + Σ_{i≥1} (βα)^i · α · (1 − h(i/α)) / (i!·i)
//
// theta must equal the mean of the transform's distribution (−h'(0)).
func BusyPeriodExceptionalGeneral(beta, alpha, theta float64, h func(s float64) float64) float64 {
	if beta < 0 || alpha <= 0 || theta <= 0 {
		panic("core: invalid parameters to BusyPeriodExceptionalGeneral")
	}
	if beta == 0 {
		return theta
	}
	z := beta * alpha
	sum := 0.0
	zi := 1.0
	for i := 1; i <= seriesMaxIter; i++ {
		zi *= z / float64(i)
		if math.IsInf(zi, 1) {
			return math.Inf(1)
		}
		inc := zi * alpha * (1 - h(float64(i)/alpha)) / float64(i)
		sum += inc
		if math.IsInf(sum, 1) {
			return math.Inf(1)
		}
		if float64(i) > z && inc < seriesRelTol*sum {
			break
		}
	}
	return theta + sum
}

// BusyPeriodHomogeneous evaluates eq. (20): the classic M/G/∞ expected
// busy period (e^{βα} − 1)/β when every customer, including the
// initiator, has mean residence alpha. Saturates to +Inf.
func BusyPeriodHomogeneous(beta, alpha float64) float64 {
	if beta < 0 || alpha < 0 {
		panic("core: invalid parameters to BusyPeriodHomogeneous")
	}
	if beta == 0 {
		return alpha
	}
	return math.Expm1(beta*alpha) / beta
}

// ExpLaplace returns the Laplace transform s ↦ 1/(1+θs) of an exponential
// distribution with mean theta, for use with
// BusyPeriodExceptionalGeneral.
func ExpLaplace(theta float64) func(float64) float64 {
	return func(s float64) float64 { return 1 / (1 + theta*s) }
}

// HypoexpLaplace returns the Laplace transform of a hypoexponential
// distribution with the given stage rates: Π rᵢ/(rᵢ+s). This is the law
// of the virtual customer Y = max{X₁,…,X_n} in Lemma 3.3.
func HypoexpLaplace(rates []float64) func(float64) float64 {
	rs := make([]float64, len(rates))
	copy(rs, rates)
	return func(s float64) float64 {
		prod := 1.0
		for _, r := range rs {
			prod *= r / (r + s)
		}
		return prod
	}
}
