package core

import (
	"math"
	"testing"

	"swarmavail/internal/dist"
	"swarmavail/internal/queue"
	"swarmavail/internal/stats"
)

// fig4Params are the §4.2 experiment parameters: s = 4 MB, μ = 33 KBps,
// λ = 1/150 peers/s per file (sizes in KB so s/μ ≈ 121.2 s).
func fig4Params() SwarmParams {
	return SwarmParams{Lambda: 1.0 / 150, Size: 4000, Mu: 33, R: 1.0 / 900, U: 300}
}

func TestResidualBusyPeriodZeroCases(t *testing.T) {
	p := fig4Params()
	if got := p.ResidualBusyPeriod(0, 0); got != 0 {
		t.Fatalf("B(0,0) = %v", got)
	}
	if got := p.ResidualBusyPeriod(3, 3); got != 0 {
		t.Fatalf("B(3,3) = %v", got)
	}
	if got := p.ResidualBusyPeriod(2, 5); got != 0 {
		t.Fatalf("B(2,5) = %v", got)
	}
}

func TestResidualBusyPeriodNoArrivals(t *testing.T) {
	// λ=0: B(n,0) is the mean of max of n exponentials = (s/μ)·H_n.
	p := SwarmParams{Lambda: 0, Size: 10, Mu: 1, R: 0.01, U: 5}
	want := 10 * (1 + 0.5 + 1.0/3)
	if got := p.ResidualBusyPeriod(3, 0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("B(3,0) = %v, want %v", got, want)
	}
}

func TestResidualBusyPeriodRecursionIdentity(t *testing.T) {
	// B(n,m) = B(n,0) − B(m,0) exactly, by construction and by Lemma 3.3.
	p := SwarmParams{Lambda: 0.02, Size: 10, Mu: 1, R: 0.01, U: 5}
	n, m := 8, 3
	lhs := p.ResidualBusyPeriod(n, m)
	rhs := p.ResidualBusyPeriod(n, 0) - p.ResidualBusyPeriod(m, 0)
	if math.Abs(lhs-rhs) > 1e-9*math.Abs(rhs) {
		t.Fatalf("B(%d,%d) = %v, want %v", n, m, lhs, rhs)
	}
	// Additivity: B(n,l) = B(n,k) + B(k,l).
	add := p.ResidualBusyPeriod(8, 5) + p.ResidualBusyPeriod(5, 3)
	if math.Abs(lhs-add) > 1e-9*math.Abs(lhs) {
		t.Fatalf("additivity broken: %v vs %v", lhs, add)
	}
}

func TestResidualBusyPeriodMatchesSimulation(t *testing.T) {
	p := SwarmParams{Lambda: 0.02, Size: 10, Mu: 1, R: 0.01, U: 5} // x = 0.2
	for _, c := range []struct{ n, m int }{{1, 0}, {4, 0}, {7, 3}} {
		want := p.ResidualBusyPeriod(c.n, c.m)
		r := dist.NewRand(int64(300 + c.n))
		var acc stats.Accumulator
		acc.AddAll(queue.SimulateResidualBusyPeriod(r, p.Lambda, p.ServiceTime(), c.n, c.m, 60000))
		if math.Abs(acc.Mean()-want) > 3*acc.CI95()+0.02*want {
			t.Errorf("B(%d,%d): sim %v ± %v vs analytic %v",
				c.n, c.m, acc.Mean(), acc.CI95(), want)
		}
	}
}

func TestResidualBusyPeriodMonotoneInN(t *testing.T) {
	p := fig4Params()
	prev := -1.0
	for n := 1; n <= 30; n++ {
		b := p.ResidualBusyPeriod(n, 0)
		if b <= prev {
			t.Fatalf("B(n,0) not increasing at n=%d: %v ≤ %v", n, b, prev)
		}
		prev = b
	}
}

func TestResidualBusyPeriodPanics(t *testing.T) {
	p := fig4Params()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative population")
		}
	}()
	p.ResidualBusyPeriod(-1, 0)
}

func TestSteadyStateResidualBusyPeriodAgainstMonteCarlo(t *testing.T) {
	// B̄(m) = E over N ~ Poisson(ρ) of B(N, m): Monte-Carlo with the
	// residual simulator must agree.
	p := SwarmParams{Lambda: 0.05, Size: 60, Mu: 1, R: 0.01, U: 5} // ρ = 3
	m := 1
	want := p.SteadyStateResidualBusyPeriod(m)

	r := dist.NewRand(310)
	var acc stats.Accumulator
	for i := 0; i < 40000; i++ {
		n := dist.PoissonCount(r, p.Rho())
		if n <= m {
			acc.Add(0)
			continue
		}
		acc.AddAll(queue.SimulateResidualBusyPeriod(r, p.Lambda, p.ServiceTime(), n, m, 1))
	}
	if math.Abs(acc.Mean()-want) > 3*acc.CI95()+0.03*want {
		t.Fatalf("B̄(%d): sim %v ± %v vs analytic %v", m, acc.Mean(), acc.CI95(), want)
	}
}

func TestSteadyStateResidualDecreasesInThreshold(t *testing.T) {
	p := SwarmParams{Lambda: 0.05, Size: 100, Mu: 1, R: 0.01, U: 5} // ρ = 5
	prev := math.Inf(1)
	for m := 0; m <= 8; m++ {
		b := p.SteadyStateResidualBusyPeriod(m)
		if b > prev {
			t.Fatalf("B̄(m) increased at m=%d: %v > %v", m, b, prev)
		}
		prev = b
	}
}

func TestFig4ResidualBusyPeriodTable(t *testing.T) {
	// §4.2: with m=9, μ=33 KBps, s=4 MB, λ=1/150, B̄(m) must be ≈0 for
	// K=1,2, grow explosively with K, and exceed the experiment length
	// (≥1500 s, self-sustaining) by K=6 — the paper's table reads
	// (0, 0, 47, 569, 2816, 8835, 256446, 75276) for K=1..8.
	base := fig4Params()
	var bm []float64
	for k := 1; k <= 8; k++ {
		b := base.Bundle(k, ScaledPublisher)
		bm = append(bm, b.SteadyStateResidualBusyPeriod(9))
	}
	if bm[0] > 1 || bm[1] > 1 {
		t.Fatalf("K=1,2 should be ≈0: %v", bm[:2])
	}
	for k := 2; k < len(bm); k++ {
		if bm[k] <= bm[k-1] {
			t.Fatalf("B̄(9) not increasing at K=%d: %v", k+1, bm)
		}
	}
	if bm[5] < 1500 {
		t.Fatalf("K=6 should be self-sustaining beyond the 1500 s experiment, got %v", bm[5])
	}
	// Growth between successive K is super-exponential in the midrange.
	if bm[4]/bm[3] < 2 || bm[5]/bm[4] < 2 {
		t.Fatalf("growth too slow: %v", bm)
	}
}

func TestThresholdUnavailabilityBounds(t *testing.T) {
	p := fig4Params()
	for m := 0; m <= 12; m += 3 {
		pr := p.ThresholdUnavailability(m)
		if pr < 0 || pr > 1 || math.IsNaN(pr) {
			t.Fatalf("P(m=%d) = %v out of [0,1]", m, pr)
		}
	}
}

func TestThresholdUnavailabilityIncreasesWithThreshold(t *testing.T) {
	// A stricter coverage threshold (larger m) ends busy periods sooner,
	// so unavailability must not decrease.
	p := SwarmParams{Lambda: 0.05, Size: 100, Mu: 1, R: 0.002, U: 100} // ρ=5
	prev := 0.0
	for m := 0; m <= 10; m++ {
		pr := p.ThresholdUnavailability(m)
		if pr < prev-1e-12 {
			t.Fatalf("P decreased at m=%d: %v < %v", m, pr, prev)
		}
		prev = pr
	}
}

func TestThresholdDownloadTimeComposition(t *testing.T) {
	p := fig4Params()
	m := 9
	want := p.ServiceTime() + p.ThresholdUnavailability(m)/p.R
	if got := p.ThresholdDownloadTime(m); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("E[T] = %v, want %v", got, want)
	}
}

func TestSinglePublisherUnavailability(t *testing.T) {
	// eq. (16): P = exp(−R·B̄(m))/(UR+1). With B̄(m) ≈ 0 (tiny swarm) it
	// must equal 1/(UR+1) = mean-off/(mean-on + mean-off) as seen by an
	// arriving peer... i.e. the publisher duty cycle complement.
	p := SwarmParams{Lambda: 1e-6, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	got := p.SinglePublisherUnavailability(9)
	want := 1 / (300.0/900 + 1)
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("P = %v, want %v", got, want)
	}
}

func TestSinglePublisherUnavailabilityVanishesForBigBundles(t *testing.T) {
	// §4.3.1 parameters: s/μ = 80 s, λ = 1/60, 1/R = 900 s, u = 300 s,
	// m = 9. By K=8 the swarm is self-sustaining: P ≈ 0.
	base := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	pk1 := base.SinglePublisherUnavailability(9)
	pk8 := base.Bundle(8, ScaledPublisher).SinglePublisherUnavailability(9)
	if pk8 > 1e-3*pk1 {
		t.Fatalf("bundling did not crush unavailability: P(1)=%v P(8)=%v", pk1, pk8)
	}
}

func TestSec431ModelPredictsInteriorOptimum(t *testing.T) {
	// §4.3.1: the model's optimal bundle size is K=5 with the
	// experimental parameters (observed optimum K=4, "correctly captures
	// the trend"). We assert an interior optimum in [3, 6] and the
	// qualitative U shape.
	base := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	best, curve := base.OptimalBundleSizeThreshold(8, 9, ConstantPublisher)
	if best < 3 || best > 6 {
		t.Fatalf("optimal K = %d (curve %v), want interior optimum in [3,6]", best, curve)
	}
	// Beyond the optimum, download time grows roughly linearly with K
	// (service-dominated): successive increments within 3x of s/μ.
	for k := best + 1; k < len(curve); k++ {
		inc := curve[k] - curve[k-1]
		if inc <= 0 || inc > 3*base.ServiceTime() {
			t.Fatalf("post-optimum increment at K=%d is %v (curve %v)", k+1, inc, curve)
		}
	}
	// K=1 must be much worse than the optimum (waiting dominated).
	if curve[0] < 1.5*curve[best-1] {
		t.Fatalf("K=1 (%v) not clearly worse than optimum (%v)", curve[0], curve[best-1])
	}
}
