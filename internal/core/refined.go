package core

import (
	"math"
)

// §3.3.2 computes E[B] "neglecting the possible impact of this group of
// peers on the duration of the busy period" and defers the refined
// expression to the technical report. This file implements that
// refinement.
//
// When content is unavailable, peers queue at rate λ until a publisher
// arrives (idle ~ exp(r)), so the number of waiting peers released at
// the next busy-period start is geometric:
//
//	P(N = n) = (r/(λ+r)) · (λ/(λ+r))^n
//
// The busy period then begins with the publisher (residence exp(u))
// *and* n peers (residence exp(s/μ) each) simultaneously in service.
// Browne–Steele's eq. (17) still applies with the initiator's residence
// replaced by M = max(U, X₁, …, X_n), whose survival function is a
// signed mixture of exponentials:
//
//	1 − H(x) = 1 − (1 − e^{−x/u}) · (1 − e^{−xμ/s})ⁿ
//	         = −Σ_{k≥1} C(n,k)(−1)^k e^{−k(μ/s)x}
//	           +Σ_{k≥0} C(n,k)(−1)^k e^{−(1/u + k·μ/s)x}
//
// which keeps every integral in eq. (22) elementary.

// survTerm is one c·e^{−d·x} term of a survival function.
type survTerm struct {
	c, d float64
}

// maxSurvival returns the survival terms of max(exp(u), n × exp(alpha)).
func maxSurvival(u, alpha float64, n int) []survTerm {
	b := 1 / alpha
	a := 1 / u
	terms := make([]survTerm, 0, 2*n+2)
	sign := 1.0
	binom := 1.0 // C(n,k)
	for k := 0; k <= n; k++ {
		if k > 0 {
			binom = binom * float64(n-k+1) / float64(k)
			sign = -sign
			// −C(n,k)(−1)^k e^{−kbx}
			terms = append(terms, survTerm{c: -binom * sign, d: float64(k) * b})
		}
		// +C(n,k)(−1)^k e^{−(a+kb)x}
		terms = append(terms, survTerm{c: binom * sign, d: a + float64(k)*b})
	}
	return terms
}

// meanFromSurvival integrates Σ c·e^{−dx} over x ≥ 0.
func meanFromSurvival(terms []survTerm) float64 {
	var m float64
	for _, t := range terms {
		m += t.c / t.d
	}
	return m
}

// groupInitiatorCap bounds the waiting-group size expansion: the signed
// binomial mixture loses precision past this point (C(n, n/2)·ε ≈ 1e-4
// at n = 40), and geometric tails beyond it are folded into the last
// term.
const groupInitiatorCap = 40

// busyPeriodGroupInitiated evaluates eq. (17) for a busy period started
// by one publisher plus n waiting peers, with the usual two-point
// service mixture for later arrivals (β, α1, α2, q1 as in eq. 9).
func busyPeriodGroupInitiated(beta, u, alpha1, alpha2, q1 float64, n int) float64 {
	nn := n
	if nn < 0 {
		nn = 0
	}
	if nn > groupInitiatorCap {
		nn = groupInitiatorCap
	}
	terms := maxSurvival(u, alpha1, nn)
	theta := meanFromSurvival(terms)
	if beta == 0 {
		return theta
	}
	x := q1 * alpha1
	y := (1 - q1) * alpha2
	abar := x + y
	if abar == 0 {
		return theta
	}
	p := x / abar
	z := beta * abar

	f := func(i, j int) float64 {
		rate := float64(j)/alpha1 + float64(i-j)/alpha2
		var s float64
		for _, t := range terms {
			s += t.c / (t.d + rate)
		}
		return s
	}
	sum := 0.0
	zi := 1.0
	for i := 1; i <= seriesMaxIter; i++ {
		zi *= z / float64(i)
		if math.IsInf(zi, 1) {
			return math.Inf(1)
		}
		ew := binomialExpectation(i, p, func(j int) float64 { return f(i, j) })
		inc := zi * ew
		sum += inc
		if math.IsInf(sum, 1) {
			return math.Inf(1)
		}
		if float64(i) > z && inc < seriesRelTol*sum {
			break
		}
	}
	return theta + sum
}

// BusyPeriodRefined returns the technical report's refined busy period:
// the geometric mixture over the waiting-group size N of busy periods
// initiated by the publisher together with N patient peers.
func (p SwarmParams) BusyPeriodRefined() float64 {
	mustValidate(p)
	if p.R == 0 {
		return math.Inf(1) // the group never stops growing
	}
	beta := p.Lambda + p.R
	q1 := p.Lambda / beta
	alpha1 := p.ServiceTime()

	succ := p.R / (p.Lambda + p.R)
	fail := 1 - succ
	var (
		eb   float64
		mass float64
		pn   = succ // P(N = 0)
	)
	for n := 0; ; n++ {
		b := busyPeriodGroupInitiated(beta, p.U, alpha1, p.U, q1, n)
		if math.IsInf(b, 1) {
			return math.Inf(1)
		}
		eb += pn * b
		mass += pn
		if mass > 1-1e-12 || n >= 4*groupInitiatorCap {
			// Fold the residual tail into the largest computed group.
			eb += (1 - mass) * b
			break
		}
		pn *= fail
	}
	return eb
}

// UnavailabilityRefined is eq. (10) with the refined busy period.
func (p SwarmParams) UnavailabilityRefined() float64 {
	mustValidate(p)
	if p.R == 0 {
		return 1
	}
	return unavailabilityFrom(p.BusyPeriodRefined(), p.R)
}

// DownloadTimeRefined is Lemma 3.2 with the refined busy period:
// E[T] = s/μ + P_ref/r. The refinement matters exactly when the
// expected waiting group λ/r is not small — the regime where the plain
// model visibly overestimates download time.
func (p SwarmParams) DownloadTimeRefined() float64 {
	mustValidate(p)
	if p.R == 0 {
		return math.Inf(1)
	}
	return p.ServiceTime() + p.UnavailabilityRefined()/p.R
}
