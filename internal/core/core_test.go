package core

import (
	"math"
	"testing"
	"testing/quick"

	"swarmavail/internal/dist"
	"swarmavail/internal/queue"
)

func validSwarm() SwarmParams {
	return SwarmParams{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.002, U: 300}
}

func TestValidate(t *testing.T) {
	if err := validSwarm().Validate(); err != nil {
		t.Fatalf("valid swarm rejected: %v", err)
	}
	bad := []SwarmParams{
		{Lambda: -1, Size: 1, Mu: 1, R: 1, U: 1},
		{Lambda: 1, Size: 0, Mu: 1, R: 1, U: 1},
		{Lambda: 1, Size: 1, Mu: 0, R: 1, U: 1},
		{Lambda: 1, Size: 1, Mu: 1, R: -1, U: 1},
		{Lambda: 1, Size: 1, Mu: 1, R: 1, U: 0},
		{Lambda: math.NaN(), Size: 1, Mu: 1, R: 1, U: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid swarm accepted: %+v", i, p)
		}
	}
}

func TestServiceTimeAndRho(t *testing.T) {
	p := validSwarm()
	if got := p.ServiceTime(); math.Abs(got-80) > 1e-12 {
		t.Fatalf("s/μ = %v, want 80", got)
	}
	if got := p.Rho(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("ρ = %v, want 0.8", got)
	}
}

func TestSimpleModelClosedForms(t *testing.T) {
	r, u := 0.002, 300.0
	eb := SimpleBusyPeriod(r, u)
	want := (math.Exp(0.6) - 1) / 0.002
	if math.Abs(eb-want) > 1e-9*want {
		t.Fatalf("eq2: %v, want %v", eb, want)
	}
	p := SimpleUnavailability(r, u)
	wantP := (1 / r) / (eb + 1/r)
	if math.Abs(p-wantP) > 1e-12 {
		t.Fatalf("eq1: %v, want %v", p, wantP)
	}
	if got := SimpleUnavailability(0, 100); got != 1 {
		t.Fatalf("r=0 unavailability = %v, want 1", got)
	}
	if got := SimpleBusyPeriod(0, 100); got != 100 {
		t.Fatalf("r=0 busy period = %v, want u", got)
	}
}

func TestSimpleBundleEq5Eq6(t *testing.T) {
	r, u, k := 0.001, 200.0, 3
	eb := SimpleBundleBusyPeriod(k, r, u)
	want := (math.Exp(float64(k*k)*r*u) - 1) / (float64(k) * r)
	if math.Abs(eb-want) > 1e-9*want {
		t.Fatalf("eq5: %v, want %v", eb, want)
	}
	p := SimpleBundleUnavailability(k, r, u)
	wantP := (1 / (float64(k) * r)) / (eb + 1/(float64(k)*r))
	if math.Abs(p-wantP) > 1e-12 {
		t.Fatalf("eq6: %v, want %v", p, wantP)
	}
}

func TestSimpleBundlingReducesUnavailabilityExponentially(t *testing.T) {
	// −log P scales as Θ(K²): the K-to-2K exponent ratio approaches 4.
	r, u := 0.001, 100.0 // ru = 0.1
	e4 := -math.Log(SimpleBundleUnavailability(4, r, u))
	e8 := -math.Log(SimpleBundleUnavailability(8, r, u))
	ratio := e8 / e4
	if ratio < 3 || ratio > 5 {
		t.Fatalf("exponent ratio %v, want ≈4 (Θ(K²))", ratio)
	}
}

func TestPeersAndPublishersBusyPeriod(t *testing.T) {
	// eq. (7): homogeneous case u = s/μ.
	lambda, r, s, mu := 0.01, 0.002, 4000.0, 50.0
	got := PeersAndPublishersBusyPeriod(lambda, r, s, mu)
	want := (math.Exp((lambda+r)*s/mu) - 1) / (lambda + r)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("eq7: %v, want %v", got, want)
	}
}

func TestUnavailabilityMatchesSimulation(t *testing.T) {
	// The full §3.3.1 model against the availability simulator.
	p := SwarmParams{Lambda: 0.01, Size: 4, Mu: 0.1, R: 0.004, U: 90}
	want := p.Unavailability()
	r := dist.NewRand(400)
	res := queue.SimulateAvailability(r, queue.AvailabilityConfig{
		PeerRate:      p.Lambda,
		PublisherRate: p.R,
		PeerService:   dist.Exponential{Rate: 1 / p.ServiceTime()},
		PublisherStay: dist.Exponential{Rate: 1 / p.U},
		Patient:       false,
	}, 4e6)
	if math.Abs(res.Unavailability-want) > 0.05*want+0.01 {
		t.Fatalf("P sim %v vs model %v", res.Unavailability, want)
	}
}

func TestDownloadTimeMatchesSimulation(t *testing.T) {
	// Lemma 3.2 against the patient-peer simulator (small λ/r so the
	// neglected waiting-group effect stays small).
	p := SwarmParams{Lambda: 0.002, Size: 4, Mu: 0.08, R: 0.004, U: 50}
	want := p.DownloadTime()
	r := dist.NewRand(401)
	res := queue.SimulateAvailability(r, queue.AvailabilityConfig{
		PeerRate:      p.Lambda,
		PublisherRate: p.R,
		PeerService:   dist.Exponential{Rate: 1 / p.ServiceTime()},
		PublisherStay: dist.Exponential{Rate: 1 / p.U},
		Patient:       true,
	}, 4e6)
	if math.Abs(res.MeanDownloadTime-want) > 3*res.DownloadTimeCI+0.06*want {
		t.Fatalf("E[T] sim %v ± %v vs model %v", res.MeanDownloadTime, res.DownloadTimeCI, want)
	}
}

func TestUnavailabilityEdgeCases(t *testing.T) {
	p := validSwarm()
	p.R = 0
	if got := p.Unavailability(); got != 1 {
		t.Fatalf("R=0: P = %v, want 1", got)
	}
	if got := p.DownloadTime(); !math.IsInf(got, 1) {
		t.Fatalf("R=0: E[T] = %v, want +Inf", got)
	}
	// Saturated busy period ⇒ P = 0 and E[T] = s/μ.
	big := SwarmParams{Lambda: 10, Size: 1000, Mu: 1, R: 0.001, U: 10}
	if got := big.Unavailability(); got != 0 {
		t.Fatalf("saturated: P = %v, want 0", got)
	}
	if got := big.DownloadTime(); math.Abs(got-big.ServiceTime()) > 1e-9 {
		t.Fatalf("saturated: E[T] = %v, want s/μ", got)
	}
}

func TestMeanPeersServedPerBusyPeriod(t *testing.T) {
	p := validSwarm()
	want := p.Lambda * p.BusyPeriod()
	if got := p.MeanPeersServedPerBusyPeriod(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("E[N] = %v, want %v", got, want)
	}
}

func TestBundleConstructors(t *testing.T) {
	p := validSwarm()
	b := p.Bundle(4, ScaledPublisher)
	if b.Lambda != 4*p.Lambda || b.Size != 4*p.Size || b.R != 4*p.R || b.U != 4*p.U || b.Mu != p.Mu {
		t.Fatalf("scaled bundle wrong: %+v", b)
	}
	c := p.Bundle(4, ConstantPublisher)
	if c.Lambda != 4*p.Lambda || c.Size != 4*p.Size || c.R != p.R || c.U != p.U {
		t.Fatalf("constant bundle wrong: %+v", c)
	}
	if p.Bundle(1, ScaledPublisher) != p {
		t.Fatal("K=1 bundle must be identity")
	}
}

func TestBundleOfHeterogeneous(t *testing.T) {
	s1 := SwarmParams{Lambda: 1.0 / 8, Size: 4000, Mu: 50, R: 0.001, U: 300}
	s2 := SwarmParams{Lambda: 1.0 / 16, Size: 4000, Mu: 50, R: 0.001, U: 300}
	b := BundleOf([]SwarmParams{s1, s2}, 0.002, 600)
	if math.Abs(b.Lambda-(1.0/8+1.0/16)) > 1e-12 || b.Size != 8000 {
		t.Fatalf("bundle aggregation wrong: %+v", b)
	}
	if b.R != 0.002 || b.U != 600 {
		t.Fatalf("bundle publisher wrong: %+v", b)
	}
}

func TestZipfBundle(t *testing.T) {
	singles, bundle := ZipfBundle(4, 1.0, 1.0, 4000, 50, 0.001, 300, 0.002, 600)
	if len(singles) != 4 {
		t.Fatalf("got %d singles", len(singles))
	}
	var sum float64
	for i, s := range singles {
		sum += s.Lambda
		if i > 0 && s.Lambda >= singles[i-1].Lambda {
			t.Fatal("Zipf popularities must decrease")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("aggregate λ = %v, want 1", sum)
	}
	if math.Abs(bundle.Lambda-1) > 1e-9 || bundle.Size != 16000 {
		t.Fatalf("bundle wrong: %+v", bundle)
	}
}

func TestTheorem31AvailabilityScaling(t *testing.T) {
	// Theorem 3.1: with constant publisher process, −log P grows as
	// Θ(K²). Fit the exponent ratio between K and 2K.
	// The exponent carries lower-order log(K) terms, so fit the quadratic
	// coefficient via first differences over doublings:
	// [e(4K)−e(2K)] / [e(2K)−e(K)] → (16−4)/(4−1) = 4.
	p := SwarmParams{Lambda: 0.01, Size: 15, Mu: 1, R: 0.0005, U: 100} // ρ1 = 0.15
	e8 := p.AvailabilityGainExponent(8, ConstantPublisher)
	e16 := p.AvailabilityGainExponent(16, ConstantPublisher)
	e32 := p.AvailabilityGainExponent(32, ConstantPublisher)
	if math.IsInf(e32, 1) {
		t.Skip("saturated before asymptotic regime (parameters too aggressive)")
	}
	ratio := (e32 - e16) / (e16 - e8)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("difference ratio = %v (e8=%v e16=%v e32=%v), want ≈4", ratio, e8, e16, e32)
	}
}

func TestTheorem32UpperBound(t *testing.T) {
	// (a) bundling can increase the per-download time by at most ~K:
	// E[T_bundle] ≤ K·E[T_single] across a parameter grid (allowing a
	// tiny numerical slack).
	grid := []SwarmParams{
		{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.002, U: 300},
		{Lambda: 0.001, Size: 4000, Mu: 50, R: 0.01, U: 100},
		{Lambda: 0.05, Size: 1000, Mu: 50, R: 0.0001, U: 50},
		{Lambda: 0.0005, Size: 8000, Mu: 100, R: 0.005, U: 600},
	}
	for _, p := range grid {
		single := p.DownloadTime()
		for _, k := range []int{2, 3, 5, 8} {
			bundle := p.Bundle(k, ScaledPublisher).DownloadTime()
			if bundle > float64(k)*single*(1+1e-9) {
				t.Errorf("K=%d: bundle %v > K·single %v for %+v",
					k, bundle, float64(k)*single, p)
			}
		}
	}
}

func TestTheorem32DownloadTimeCanDrop(t *testing.T) {
	// (b) with a highly unavailable publisher, the bundle beats the
	// single swarm outright: E[T_bundle] < E[T_single] despite K× the
	// content.
	p := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 5000, U: 300}
	single := p.DownloadTime()
	bundle := p.Bundle(4, ScaledPublisher).DownloadTime()
	if bundle >= single {
		t.Fatalf("bundle %v did not beat single %v", bundle, single)
	}
	// And the gain grows as R shrinks (Θ(1/R)).
	p2 := p
	p2.R = p.R / 10
	gain1 := p.DownloadTime() - p.Bundle(4, ScaledPublisher).DownloadTime()
	gain2 := p2.DownloadTime() - p2.Bundle(4, ScaledPublisher).DownloadTime()
	if gain2 <= gain1 {
		t.Fatalf("gain did not grow as R fell: %v vs %v", gain2, gain1)
	}
}

func TestDownloadTimeCurveAndOptimum(t *testing.T) {
	p := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	best, curve := p.OptimalBundleSize(10, ScaledPublisher)
	if len(curve) != 10 {
		t.Fatalf("curve length %d", len(curve))
	}
	for k, v := range curve {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("curve[%d] = %v", k, v)
		}
	}
	if curve[best-1] > curve[0] {
		t.Fatalf("optimum %d worse than K=1: %v", best, curve)
	}
}

func TestPerFileDownloadTime(t *testing.T) {
	p := validSwarm()
	k := 3
	want := p.Bundle(k, ScaledPublisher).DownloadTime() / 3
	if got := p.PerFileDownloadTime(k, ScaledPublisher); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("per-file = %v, want %v", got, want)
	}
}

func TestTheoremBoundsRatio(t *testing.T) {
	p := validSwarm()
	ratio := p.TheoremBounds(4, ScaledPublisher)
	if ratio <= 0 || math.IsNaN(ratio) {
		t.Fatalf("ratio = %v", ratio)
	}
}

func TestPublisherScalingString(t *testing.T) {
	if ScaledPublisher.String() != "scaled" || ConstantPublisher.String() != "constant" {
		t.Fatal("stringer wrong")
	}
	if PublisherScaling(9).String() == "" {
		t.Fatal("unknown scaling must still print")
	}
}

func TestLingeringExtendsBusyPeriod(t *testing.T) {
	p := SwarmParams{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.001, U: 300}
	selfish := p.BusyPeriod()
	linger := Lingering{SwarmParams: p, Gamma: 1.0 / 200}
	if got := linger.PeerResidence(); math.Abs(got-(80+200)) > 1e-9 {
		t.Fatalf("residence = %v, want 280", got)
	}
	if lb := linger.BusyPeriod(); lb <= selfish {
		t.Fatalf("lingering busy period %v not longer than selfish %v", lb, selfish)
	}
	if lp := linger.Unavailability(); lp >= p.Unavailability() {
		t.Fatalf("lingering unavailability %v not below selfish %v", lp, p.Unavailability())
	}
	if lt := linger.DownloadTime(); lt >= p.DownloadTime() {
		t.Fatalf("lingering download time %v not below selfish %v", lt, p.DownloadTime())
	}
}

func TestLingeringEdgeCases(t *testing.T) {
	p := validSwarm()
	forever := Lingering{SwarmParams: p, Gamma: 0}
	if !math.IsInf(forever.PeerResidence(), 1) || !math.IsInf(forever.BusyPeriod(), 1) {
		t.Fatal("γ=0 means peers never leave: busy period must be +Inf")
	}
	if forever.Unavailability() != 0 {
		t.Fatal("γ=0 must give perfect availability")
	}
	noR := Lingering{SwarmParams: p, Gamma: 1}
	noR.R = 0
	if noR.Unavailability() != 1 || !math.IsInf(noR.DownloadTime(), 1) {
		t.Fatal("R=0 lingering must be fully unavailable")
	}
}

func TestEq15LingeringBalance(t *testing.T) {
	// eq. (15): the residence needed equals (s1+s2)/μ·(1+λ2/λ1).
	s1, s2, l1, l2, mu := 100.0, 8000.0, 0.001, 0.5, 50.0
	got := EquivalentLingeringResidence(s1, s2, l1, l2, mu)
	want := (s1 + s2) / mu * (1 + l2/l1)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("eq15 residence = %v, want %v", got, want)
	}
	// As λ1 → 0, the stand-alone requirement diverges while the bundle
	// cost stays (s1+s2)/μ.
	small := EquivalentLingeringResidence(s1, s2, 1e-9, l2, mu)
	if small < 1e6*(s1+s2)/mu {
		t.Fatalf("requirement did not diverge: %v", small)
	}
	if got := LingeringForEquivalentLoad(s1, s2, 0, l2, mu); !math.IsInf(got, 1) {
		t.Fatal("λ1=0 must require infinite lingering")
	}
}

func TestPanicsOnInvalidUse(t *testing.T) {
	p := validSwarm()
	cases := []func(){
		func() { p.Bundle(0, ScaledPublisher) },
		func() { BundleOf(nil, 1, 1) },
		func() { p.DownloadTimeCurve(0, ScaledPublisher) },
		func() { SwarmParams{}.BusyPeriod() },
		func() { SimpleBundleBusyPeriod(0, 1, 1) },
		func() { SimpleBundleUnavailability(0, 1, 1) },
		func() { PeersAndPublishersBusyPeriod(1, 1, 0, 1) },
		func() { LingeringForEquivalentLoad(1, 1, 1, 1, 0) },
		func() { p.OptimalBundleSizeThreshold(0, 9, ScaledPublisher) },
		func() { p.SteadyStateResidualBusyPeriod(-1) },
		func() { ZipfBundle(0, 1, 1, 1, 1, 1, 1, 1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: unavailability is always a probability, and bundling with
// scaled publishers never increases it.
func TestBundlingNeverHurtsAvailabilityProperty(t *testing.T) {
	f := func(l, s, rr, uu uint16, k uint8) bool {
		p := SwarmParams{
			Lambda: float64(l%100)/1000 + 0.0001,
			Size:   float64(s%5000) + 100,
			Mu:     50,
			R:      float64(rr%50)/10000 + 0.00005,
			U:      float64(uu%900) + 10,
		}
		kk := int(k%6) + 2
		p1 := p.Unavailability()
		pk := p.Bundle(kk, ScaledPublisher).Unavailability()
		if p1 < 0 || p1 > 1 || pk < 0 || pk > 1 {
			return false
		}
		return pk <= p1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
