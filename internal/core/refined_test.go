package core

import (
	"math"
	"math/rand"
	"testing"

	"swarmavail/internal/dist"
	"swarmavail/internal/queue"
)

func TestMaxSurvivalKnownCases(t *testing.T) {
	// n=0: pure exp(u).
	terms := maxSurvival(100, 50, 0)
	if len(terms) != 1 || math.Abs(terms[0].c-1) > 1e-12 || math.Abs(terms[0].d-0.01) > 1e-12 {
		t.Fatalf("n=0 terms: %+v", terms)
	}
	if m := meanFromSurvival(terms); math.Abs(m-100) > 1e-9 {
		t.Fatalf("n=0 mean %v", m)
	}
	// n=1: E[max(U, X)] = u + α − 1/(1/u + 1/α).
	terms = maxSurvival(100, 50, 1)
	want := 100.0 + 50 - 1/(0.01+0.02)
	if m := meanFromSurvival(terms); math.Abs(m-want) > 1e-9 {
		t.Fatalf("n=1 mean %v, want %v", m, want)
	}
}

func TestMaxSurvivalMeanAgainstMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 5, 12} {
		terms := maxSurvival(80, 30, n)
		want := meanFromSurvival(terms)
		var sum float64
		const trials = 300000
		for i := 0; i < trials; i++ {
			m := r.ExpFloat64() * 80
			for j := 0; j < n; j++ {
				if x := r.ExpFloat64() * 30; x > m {
					m = x
				}
			}
			sum += m
		}
		got := sum / trials
		if math.Abs(got-want) > 0.02*want {
			t.Errorf("n=%d: MC mean %v vs analytic %v", n, got, want)
		}
	}
}

func TestMaxSurvivalIsValidSurvival(t *testing.T) {
	// 1−H must start at 1, decrease, and stay in [0,1].
	terms := maxSurvival(100, 40, 8)
	eval := func(x float64) float64 {
		var s float64
		for _, tm := range terms {
			s += tm.c * math.Exp(-tm.d*x)
		}
		return s
	}
	if got := eval(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("1−H(0) = %v", got)
	}
	prev := 1.0
	for x := 1.0; x < 2000; x *= 1.5 {
		v := eval(x)
		if v < -1e-9 || v > prev+1e-9 {
			t.Fatalf("survival not monotone in [0,1] at x=%v: %v (prev %v)", x, v, prev)
		}
		prev = v
	}
}

func TestGroupInitiatedReducesToExceptional(t *testing.T) {
	// n=0 must agree with eq. (9) exactly.
	beta, u, a1, a2, q1 := 0.02, 120.0, 40.0, 120.0, 0.8
	got := busyPeriodGroupInitiated(beta, u, a1, a2, q1, 0)
	want := BusyPeriodExceptional(beta, u, a1, a2, q1)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("n=0: %v vs eq9 %v", got, want)
	}
}

func TestGroupInitiatedMonotoneInGroupSize(t *testing.T) {
	beta, u, a1, a2, q1 := 0.01, 100.0, 60.0, 100.0, 0.7
	prev := 0.0
	for n := 0; n <= 10; n++ {
		b := busyPeriodGroupInitiated(beta, u, a1, a2, q1, n)
		if b <= prev {
			t.Fatalf("busy period not increasing at n=%d: %v ≤ %v", n, b, prev)
		}
		prev = b
	}
}

// maxDist samples max(exp(u), n iid exp(alpha)) for the simulation
// cross-check.
type maxDist struct {
	u, alpha float64
	n        int
}

func (m maxDist) Mean() float64 { return meanFromSurvival(maxSurvival(m.u, m.alpha, m.n)) }
func (m maxDist) Var() float64  { return math.NaN() } // not needed
func (m maxDist) Sample(r *rand.Rand) float64 {
	v := r.ExpFloat64() * m.u
	for i := 0; i < m.n; i++ {
		if x := r.ExpFloat64() * m.alpha; x > v {
			v = x
		}
	}
	return v
}

func TestGroupInitiatedMatchesSimulation(t *testing.T) {
	beta, u, a1, a2, q1 := 0.015, 150.0, 50.0, 150.0, 0.75
	n := 4
	want := busyPeriodGroupInitiated(beta, u, a1, a2, q1, n)

	r := dist.NewRand(501)
	cfg := queue.BusyPeriodConfig{
		Beta:  beta,
		First: maxDist{u: u, alpha: a1, n: n},
		Service: dist.NewMixture(
			[]dist.Dist{dist.Exponential{Rate: 1 / a1}, dist.Exponential{Rate: 1 / a2}},
			[]float64{q1, 1 - q1},
		),
	}
	mean, ci := queue.MeanBusyPeriod(r, cfg, 40000)
	if math.Abs(mean-want) > 3*ci+0.02*want {
		t.Fatalf("group-initiated E[B]: sim %v ± %v vs analytic %v", mean, ci, want)
	}
}

func TestRefinedBusyPeriodAtLeastPlain(t *testing.T) {
	// The waiting group can only lengthen busy periods.
	for _, p := range []SwarmParams{
		{Lambda: 0.002, Size: 4, Mu: 0.08, R: 0.004, U: 50},
		{Lambda: 0.02, Size: 4, Mu: 0.08, R: 0.004, U: 50},
		{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.002, U: 300},
	} {
		plain := p.BusyPeriod()
		refined := p.BusyPeriodRefined()
		if refined < plain*(1-1e-9) {
			t.Errorf("refined %v below plain %v for %+v", refined, plain, p)
		}
		if p.UnavailabilityRefined() > p.Unavailability()+1e-12 {
			t.Errorf("refined unavailability above plain for %+v", p)
		}
		if p.DownloadTimeRefined() > p.DownloadTime()+1e-9 {
			t.Errorf("refined download time above plain for %+v", p)
		}
	}
}

func TestRefinedDownloadTimeMatchesPatientSimulation(t *testing.T) {
	// The regime where §3.3.2's neglect bites: λ/r = 5 waiting peers on
	// average. The plain model overestimates E[T]; the refinement must
	// land within the simulation's noise.
	p := SwarmParams{Lambda: 0.02, Size: 4, Mu: 0.08, R: 0.004, U: 50}
	r := dist.NewRand(502)
	res := queue.SimulateAvailability(r, queue.AvailabilityConfig{
		PeerRate:      p.Lambda,
		PublisherRate: p.R,
		PeerService:   dist.Exponential{Rate: 1 / p.ServiceTime()},
		PublisherStay: dist.Exponential{Rate: 1 / p.U},
		Patient:       true,
	}, 6e6)

	plain := p.DownloadTime()
	refined := p.DownloadTimeRefined()
	simErr := func(model float64) float64 { return math.Abs(res.MeanDownloadTime - model) }
	if simErr(refined) >= simErr(plain) {
		t.Fatalf("refinement did not help: sim %v, plain %v, refined %v",
			res.MeanDownloadTime, plain, refined)
	}
	if simErr(refined) > 3*res.DownloadTimeCI+0.05*res.MeanDownloadTime {
		t.Fatalf("refined model %v vs sim %v ± %v: still outside noise",
			refined, res.MeanDownloadTime, res.DownloadTimeCI)
	}
}

func TestRefinedEdgeCases(t *testing.T) {
	p := validSwarm()
	p.R = 0
	if !math.IsInf(p.BusyPeriodRefined(), 1) {
		t.Fatal("R=0 refined busy period must be +Inf")
	}
	if p.UnavailabilityRefined() != 1 {
		t.Fatal("R=0 refined unavailability must be 1")
	}
	if !math.IsInf(p.DownloadTimeRefined(), 1) {
		t.Fatal("R=0 refined download time must be +Inf")
	}
	// Negative group size is clamped.
	if got := busyPeriodGroupInitiated(0.01, 100, 50, 100, 0.5, -3); got <= 0 {
		t.Fatalf("negative n mishandled: %v", got)
	}
}

func TestRefinedConvergesToPlainForSmallGroups(t *testing.T) {
	// λ/r → 0: almost never a waiting group, so refined ≈ plain.
	p := SwarmParams{Lambda: 0.0001, Size: 4, Mu: 0.08, R: 0.01, U: 50}
	plain := p.BusyPeriod()
	refined := p.BusyPeriodRefined()
	if math.Abs(refined-plain) > 0.01*plain {
		t.Fatalf("refined %v should approach plain %v as λ/r → 0", refined, plain)
	}
}
