// Package core implements the paper's primary contribution: the
// queueing-theoretic model of content availability and download time in
// swarming systems (Menasché et al., "Content Availability and Bundling
// in Swarming Systems", CoNEXT 2009).
//
// The key insight is to view a swarm as an M/G/∞ queue whose busy periods
// are exactly the intervals during which content is available. The model
// covers:
//
//   - the simple publisher-only availability model (§3.2, eq. 1–6);
//   - availability sustained by peers and publishers (eq. 7–8);
//   - the Browne–Steele busy period with an exceptional first customer
//     (eq. 9; see busyperiod.go);
//   - availability with impatient peers (§3.3.1, eq. 10) and download
//     time with patient peers (§3.3.2, Lemma 3.2, eq. 11);
//   - threshold coverage (§3.3.3, Lemma 3.3, eq. 12–14) including the
//     single-publisher adaptation validated on PlanetLab (eq. 16);
//   - altruistic lingering (§3.3.4, eq. 15);
//   - bundling: the e^{Θ(K²)} availability laws (Lemma 3.1, Theorem 3.1),
//     the download-time tradeoff (Theorem 3.2), and optimal bundle-size
//     search (§3.4).
//
// Notation follows Table 1 of the paper: λ (Lambda) is the peer arrival
// rate, s (Size) the content size, μ (Mu) the effective per-peer download
// rate, r (R) the publisher arrival rate and u (U) the mean publisher
// residence time. Bundle-level quantities are the same fields of a
// SwarmParams produced by Bundle or BundleOf.
package core

import (
	"fmt"
	"math"
)

// SwarmParams describes a single swarm — or a bundle, which is just a
// swarm with aggregated parameters (Table 1 of the paper).
type SwarmParams struct {
	// Lambda is the peer arrival rate λ (1/s).
	Lambda float64
	// Size is the content size s. Any unit works as long as Mu is
	// expressed per the same unit (the model only ever uses s/μ).
	Size float64
	// Mu is the effective average download capacity μ of the swarm
	// (content units per second).
	Mu float64
	// R is the arrival rate r of publishers (1/s).
	R float64
	// U is the mean residence time u of a publisher (s).
	U float64
}

// Validate returns an error if any parameter is non-positive where the
// model requires positivity.
func (p SwarmParams) Validate() error {
	switch {
	case p.Lambda < 0 || math.IsNaN(p.Lambda):
		return fmt.Errorf("core: peer arrival rate λ=%v must be ≥ 0", p.Lambda)
	case p.Size <= 0 || math.IsNaN(p.Size):
		return fmt.Errorf("core: content size s=%v must be > 0", p.Size)
	case p.Mu <= 0 || math.IsNaN(p.Mu):
		return fmt.Errorf("core: swarm capacity μ=%v must be > 0", p.Mu)
	case p.R < 0 || math.IsNaN(p.R):
		return fmt.Errorf("core: publisher arrival rate r=%v must be ≥ 0", p.R)
	case p.U <= 0 || math.IsNaN(p.U):
		return fmt.Errorf("core: publisher residence u=%v must be > 0", p.U)
	}
	return nil
}

// ServiceTime returns the mean active download (service) time s/μ.
func (p SwarmParams) ServiceTime() float64 { return p.Size / p.Mu }

// Rho returns the peer offered load ρ = λ·s/μ — the steady-state mean
// number of concurrently downloading peers (M/G/∞ occupancy).
func (p SwarmParams) Rho() float64 { return p.Lambda * p.ServiceTime() }

// BusyPeriod returns E[B] for the swarm under the §3.3 model: the busy
// period of the M/G/∞ queue with aggregate arrival rate λ+r, exceptional
// first customer (a publisher staying u on average), and two-point
// residence mixture (peers s/μ w.p. λ/(λ+r), publishers u otherwise).
// Equation (9) with the §3.3.1/§3.3.2 parameterisation.
func (p SwarmParams) BusyPeriod() float64 {
	mustValidate(p)
	beta := p.Lambda + p.R
	q1 := 0.0
	if beta > 0 {
		q1 = p.Lambda / beta
	}
	return BusyPeriodExceptional(beta, p.U, p.ServiceTime(), p.U, q1)
}

// Unavailability returns P, the probability that an arriving peer finds
// the content unavailable (eq. 10): P = (1/r) / (E[B] + 1/r).
// When R is zero the swarm eventually dies and never recovers, so P = 1.
// When the busy period saturates to +Inf, P = 0.
func (p SwarmParams) Unavailability() float64 {
	mustValidate(p)
	if p.R == 0 {
		return 1
	}
	return unavailabilityFrom(p.BusyPeriod(), p.R)
}

// Availability returns 1 − Unavailability.
func (p SwarmParams) Availability() float64 { return 1 - p.Unavailability() }

// DownloadTime returns the mean download time E[T] of patient peers
// (Lemma 3.2, eq. 11): the active service time plus the expected idle
// wait, E[T] = s/μ + P/r. It is +Inf when R is zero and the swarm is not
// self-sustaining forever.
func (p SwarmParams) DownloadTime() float64 {
	mustValidate(p)
	if p.R == 0 {
		return math.Inf(1)
	}
	return p.ServiceTime() + p.Unavailability()/p.R
}

// MeanPeersServedPerBusyPeriod returns E[N] = λ·E[B], the expected
// number of peers served in one busy period (Lemma 3.1's quantity).
func (p SwarmParams) MeanPeersServedPerBusyPeriod() float64 {
	return p.Lambda * p.BusyPeriod()
}

// unavailabilityFrom maps a busy period and a publisher arrival rate to
// P = (1/r)/(E[B]+1/r), handling the saturated E[B] = +Inf case (P = 0).
func unavailabilityFrom(eb, r float64) float64 {
	if math.IsInf(eb, 1) {
		return 0
	}
	idle := 1 / r
	return idle / (eb + idle)
}

func mustValidate(p SwarmParams) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
}

// ---------------------------------------------------------------------------
// The simple model of §3.2 (publishers only; coverage threshold one).

// SimpleBusyPeriod returns eq. (2): E[B] = (e^{r·u} − 1)/r, the busy
// period sustained by publishers alone.
func SimpleBusyPeriod(r, u float64) float64 {
	if r < 0 || u < 0 {
		panic("core: SimpleBusyPeriod needs non-negative parameters")
	}
	if r == 0 {
		return u
	}
	return math.Expm1(r*u) / r
}

// SimpleUnavailability returns eq. (1): the probability a peer arrives to
// find no publisher-sustained busy period in progress,
// P = (1/r)/(E[B] + 1/r).
func SimpleUnavailability(r, u float64) float64 {
	if r <= 0 {
		return 1
	}
	return unavailabilityFrom(SimpleBusyPeriod(r, u), r)
}

// SimpleBundleBusyPeriod returns eq. (5): the busy period of a bundle of
// K homogeneous files when the publisher process scales as R = K·r,
// U = K·u, i.e. (e^{K²·r·u} − 1)/(K·r).
func SimpleBundleBusyPeriod(k int, r, u float64) float64 {
	if k < 1 {
		panic("core: bundle size must be ≥ 1")
	}
	return SimpleBusyPeriod(float64(k)*r, float64(k)*u)
}

// SimpleBundleUnavailability returns eq. (6).
func SimpleBundleUnavailability(k int, r, u float64) float64 {
	if k < 1 {
		panic("core: bundle size must be ≥ 1")
	}
	return SimpleUnavailability(float64(k)*r, float64(k)*u)
}

// PeersAndPublishersBusyPeriod returns eq. (7): the busy period when
// publishers stay exactly as long as one service time (u = s/μ), so all
// customers are exchangeable: E[B] = (e^{(λ+r)s/μ} − 1)/(λ+r).
func PeersAndPublishersBusyPeriod(lambda, r, s, mu float64) float64 {
	if mu <= 0 || s <= 0 {
		panic("core: need positive size and capacity")
	}
	return BusyPeriodHomogeneous(lambda+r, s/mu)
}
