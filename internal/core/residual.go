package core

import (
	"math"

	"swarmavail/internal/dist"
)

// ResidualBusyPeriod returns B(n, m): the expected length of a residual
// busy period that begins with n leechers (each with memoryless residual
// service, mean s/μ) and ends as soon as the population reaches m < n,
// with fresh peers arriving at rate λ (Lemma 3.3).
//
// B(n,0) is eq. (12); for m > 0 the recursion B(n,m) = B(n,0) − B(m,0)
// applies. B(n,m) = 0 when n ≤ m. The result saturates to +Inf.
func (p SwarmParams) ResidualBusyPeriod(n, m int) float64 {
	mustValidate(p)
	if n < 0 || m < 0 {
		panic("core: populations must be non-negative")
	}
	if n <= m {
		return 0
	}
	bn := residualFromEmpty(n, p.Lambda, p.ServiceTime())
	if m == 0 {
		return bn
	}
	bm := residualFromEmpty(m, p.Lambda, p.ServiceTime())
	if math.IsInf(bn, 1) && math.IsInf(bm, 1) {
		// Both saturate: the difference is dominated by the harmonic
		// (first) part, but at this magnitude the distinction is
		// irrelevant — the swarm is self-sustaining either way.
		return math.Inf(1)
	}
	return bn - bm
}

// residualFromEmpty evaluates eq. (12):
//
//	B(n,0) = Σ_{i=1..n} s/(iμ)
//	       + (s/μ)·Σ_{i≥1} x^i · [(n+i)! − n!·i!] / (i!·(n+i)!·i)
//
// with x = λ·s/μ. The bracket simplifies to 1/(i·i!) − n!/(i·(n+i)!),
// and both partial terms are updated iteratively.
func residualFromEmpty(n int, lambda, serviceMean float64) float64 {
	var harmonic float64
	for i := 1; i <= n; i++ {
		harmonic += serviceMean / float64(i)
	}
	x := lambda * serviceMean
	if x == 0 {
		return harmonic
	}
	var tail float64
	a := 0.0 // x^i/(i!·i)
	b := 0.0 // x^i·n!/((n+i)!·i)
	for i := 1; i <= seriesMaxIter; i++ {
		if i == 1 {
			a = x
			b = x / float64(n+1)
		} else {
			a *= x * float64(i-1) / (float64(i) * float64(i))
			b *= x * float64(i-1) / (float64(n+i) * float64(i))
		}
		inc := a - b
		tail += inc
		if math.IsInf(tail, 1) {
			return math.Inf(1)
		}
		if float64(i) > x && inc < seriesRelTol*tail {
			break
		}
	}
	return harmonic + serviceMean*tail
}

// SteadyStateResidualBusyPeriod returns B̄(m) of eq. (13): the mean
// residual busy period at the instant the swarm transitions to Phase 2
// (all publishers gone), assuming the peer population is then in the
// M/G/∞ steady state Poisson(ρ), ρ = λ·s/μ:
//
//	B̄(m) = Σ_{i≥0} e^{−ρ}·ρ^i/i! · B(i, m)
//
// Terms with i ≤ m contribute zero. Saturates to +Inf.
func (p SwarmParams) SteadyStateResidualBusyPeriod(m int) float64 {
	mustValidate(p)
	if m < 0 {
		panic("core: threshold must be non-negative")
	}
	rho := p.Rho()
	// Sum while the Poisson mass is non-negligible. The window
	// [0, ρ + 40√ρ + 60] carries all but ~1e-15 of the mass.
	hi := int(rho+40*math.Sqrt(rho)) + 60
	var sum float64
	for i := m + 1; i <= hi; i++ {
		pm := dist.PoissonPMF(rho, i)
		if pm == 0 {
			continue
		}
		b := p.ResidualBusyPeriod(i, m)
		if math.IsInf(b, 1) {
			return math.Inf(1)
		}
		sum += pm * b
	}
	return sum
}

// ThresholdUnavailability returns eq. (14) of Theorem 3.3: with coverage
// threshold m, publishers arriving at rate r and staying u,
//
//	P = exp(−r·(u + B̄(m)))
//
// — the probability that a cycle's publisher-sustained phase plus the
// peer-sustained residual phase fails to bridge to the next publisher.
func (p SwarmParams) ThresholdUnavailability(m int) float64 {
	mustValidate(p)
	bm := p.SteadyStateResidualBusyPeriod(m)
	if math.IsInf(bm, 1) {
		return 0
	}
	return math.Exp(-p.R * (p.U + bm))
}

// ThresholdDownloadTime returns Theorem 3.3's mean download time for
// patient peers under coverage threshold m: s/μ + P/r.
func (p SwarmParams) ThresholdDownloadTime(m int) float64 {
	mustValidate(p)
	if p.R == 0 {
		return math.Inf(1)
	}
	return p.ServiceTime() + p.ThresholdUnavailability(m)/p.R
}

// SinglePublisherUnavailability returns eq. (16), the adaptation of
// Theorem 3.3 to the experimental §4.3 setting with exactly one
// publisher alternating between on (mean U) and off (mean 1/R) periods:
//
//	P = exp(−R·B̄(m)) / (U·R + 1)
//
// where B̄(m) uses this swarm's (bundle's) own λ and s/μ in both the
// Poisson steady-state weight and the residual busy periods.
func (p SwarmParams) SinglePublisherUnavailability(m int) float64 {
	mustValidate(p)
	bm := p.SteadyStateResidualBusyPeriod(m)
	if math.IsInf(bm, 1) {
		return 0
	}
	return math.Exp(-p.R*bm) / (p.U*p.R + 1)
}

// SinglePublisherDownloadTime returns the §4.3.1 mean download time
// estimate: s/μ + P/R with P from eq. (16). The off-time being
// exponential with mean 1/R, a blocked peer waits 1/R on average.
func (p SwarmParams) SinglePublisherDownloadTime(m int) float64 {
	mustValidate(p)
	if p.R == 0 {
		return math.Inf(1)
	}
	return p.ServiceTime() + p.SinglePublisherUnavailability(m)/p.R
}
