package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func planningSwarm() SwarmParams {
	return SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
}

func TestRequiredBundleSizeMinimality(t *testing.T) {
	p := planningSwarm()
	target := 1e-6
	k, err := p.RequiredBundleSize(target, 10, ScaledPublisher)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bundle(k, ScaledPublisher).Unavailability() > target {
		t.Fatalf("K=%d does not meet target", k)
	}
	if k > 1 && p.Bundle(k-1, ScaledPublisher).Unavailability() <= target {
		t.Fatalf("K=%d not minimal", k)
	}
}

func TestRequiredBundleSizeUnachievable(t *testing.T) {
	p := SwarmParams{Lambda: 1e-7, Size: 1, Mu: 1, R: 1e-6, U: 1}
	if _, err := p.RequiredBundleSize(1e-9, 3, ScaledPublisher); !errors.Is(err, ErrUnachievable) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
}

func TestRequiredBundleSizeValidation(t *testing.T) {
	p := planningSwarm()
	if _, err := p.RequiredBundleSize(0, 5, ScaledPublisher); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := p.RequiredBundleSize(0.5, 0, ScaledPublisher); err == nil {
		t.Fatal("maxK 0 accepted")
	}
	// Target 1 is trivially met at K=1.
	k, err := p.RequiredBundleSize(1, 5, ScaledPublisher)
	if err != nil || k != 1 {
		t.Fatalf("trivial target: %d, %v", k, err)
	}
}

func TestRequiredPublisherRate(t *testing.T) {
	p := planningSwarm()
	target := 0.1
	r, err := p.RequiredPublisherRate(target, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.R = r
	if got := q.Unavailability(); got > target*(1+1e-6) {
		t.Fatalf("solved r=%v gives P=%v > %v", r, got, target)
	}
	// Minimality: 1% less publisher rate misses the target.
	q.R = r * 0.99
	if got := q.Unavailability(); got <= target {
		t.Fatalf("r not minimal: %v still meets target at 0.99r", got)
	}
}

func TestRequiredPublisherRateEdges(t *testing.T) {
	p := planningSwarm()
	// Already met at lo.
	r, err := p.RequiredPublisherRate(0.999999, 1e-4, 1)
	if err != nil || r != 1e-4 {
		t.Fatalf("lo shortcut: %v, %v", r, err)
	}
	if _, err := p.RequiredPublisherRate(1e-30, 1e-6, 2e-6); !errors.Is(err, ErrUnachievable) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
	if _, err := p.RequiredPublisherRate(0.5, 0, 1); err == nil {
		t.Fatal("lo=0 accepted")
	}
	if _, err := p.RequiredPublisherRate(1.5, 1e-6, 1); err == nil {
		t.Fatal("target>1 accepted")
	}
}

func TestRequiredLingering(t *testing.T) {
	p := SwarmParams{Lambda: 0.01, Size: 4000, Mu: 50, R: 0.001, U: 300}
	target := p.Unavailability() / 10
	lg, err := p.RequiredLingering(target, 1e5)
	if err != nil {
		t.Fatal(err)
	}
	got := Lingering{SwarmParams: p, Gamma: 1 / lg}.Unavailability()
	if got > target*(1+1e-6) {
		t.Fatalf("1/γ=%v gives P=%v > %v", lg, got, target)
	}
	// Already-met target needs zero lingering.
	z, err := p.RequiredLingering(0.999, 1e5)
	if err != nil || z != 0 {
		t.Fatalf("trivial lingering: %v, %v", z, err)
	}
	if _, err := p.RequiredLingering(1e-300, 10); !errors.Is(err, ErrUnachievable) {
		t.Fatalf("err = %v, want ErrUnachievable", err)
	}
}

func TestSeedingCost(t *testing.T) {
	p := planningSwarm()
	duty := p.R * p.U / (1 + p.R*p.U)
	want := duty * 100
	if got := p.SeedingCost(100); math.Abs(got-want) > 1e-12 {
		t.Fatalf("seeding cost %v, want %v", got, want)
	}
	// Always-available publisher (r·u → ∞) approaches full capacity.
	alwaysOn := SwarmParams{Lambda: 0.01, Size: 1, Mu: 1, R: 100, U: 1000}
	if got := alwaysOn.SeedingCost(50); got < 49.9 {
		t.Fatalf("near-always-on cost %v, want ≈50", got)
	}
}

func TestEvaluateBundle(t *testing.T) {
	s1 := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 0.001, U: 300}
	s2 := SwarmParams{Lambda: 1.0 / 600, Size: 4000, Mu: 50, R: 0.001, U: 300}
	plan := EvaluateBundle([]SwarmParams{s1, s2}, 0.001, 300)
	if len(plan.SoloTimes) != 2 {
		t.Fatalf("solo times: %v", plan.SoloTimes)
	}
	if plan.Bundle.Lambda != s1.Lambda+s2.Lambda {
		t.Fatalf("bundle λ wrong: %v", plan.Bundle.Lambda)
	}
	if plan.BundleTime <= 0 || plan.Unavailability < 0 || plan.Unavailability > 1 {
		t.Fatalf("plan metrics: %+v", plan)
	}
	// The unpopular title must benefit.
	if plan.BundleTime >= plan.SoloTimes[1] {
		t.Fatalf("bundle %v did not beat unpopular solo %v", plan.BundleTime, plan.SoloTimes[1])
	}
}

// Property: RequiredBundleSize is consistent — the returned K meets the
// target and K−1 does not (when K > 1).
func TestRequiredBundleSizeProperty(t *testing.T) {
	f := func(l, rr uint16, texp uint8) bool {
		p := SwarmParams{
			Lambda: float64(l%100)/1000 + 0.001,
			Size:   4000,
			Mu:     50,
			R:      float64(rr%100)/10000 + 0.0001,
			U:      300,
		}
		target := math.Pow(10, -float64(texp%8)-1) // 1e-1 .. 1e-8
		k, err := p.RequiredBundleSize(target, 12, ScaledPublisher)
		if errors.Is(err, ErrUnachievable) {
			// Then even K=12 must miss it.
			return p.Bundle(12, ScaledPublisher).Unavailability() > target
		}
		if err != nil {
			return false
		}
		if p.Bundle(k, ScaledPublisher).Unavailability() > target {
			return false
		}
		return k == 1 || p.Bundle(k-1, ScaledPublisher).Unavailability() > target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
