package core

import (
	"fmt"
	"math"

	"swarmavail/internal/dist"
)

// PublisherScaling selects how the publisher process of a bundle relates
// to that of its constituent swarms.
type PublisherScaling int

const (
	// ScaledPublisher models one publisher process per constituent file
	// folded into the bundle: R = K·r and U = K·u (§3.2, eq. 5–6).
	ScaledPublisher PublisherScaling = iota
	// ConstantPublisher keeps R = r and U = u regardless of K — the
	// harder case under which Lemma 3.1 and Theorems 3.1/3.2 are stated.
	ConstantPublisher
)

// String implements fmt.Stringer.
func (ps PublisherScaling) String() string {
	switch ps {
	case ScaledPublisher:
		return "scaled"
	case ConstantPublisher:
		return "constant"
	default:
		return fmt.Sprintf("PublisherScaling(%d)", int(ps))
	}
}

// Bundle returns the swarm parameters of a bundle of k homogeneous copies
// of p: peer demand aggregates (Λ = K·λ), content size aggregates
// (S = K·s), and the publisher process follows the chosen scaling.
func (p SwarmParams) Bundle(k int, scaling PublisherScaling) SwarmParams {
	mustValidate(p)
	if k < 1 {
		panic("core: bundle size must be ≥ 1")
	}
	b := SwarmParams{
		Lambda: float64(k) * p.Lambda,
		Size:   float64(k) * p.Size,
		Mu:     p.Mu,
		R:      p.R,
		U:      p.U,
	}
	if scaling == ScaledPublisher {
		b.R = float64(k) * p.R
		b.U = float64(k) * p.U
	}
	return b
}

// BundleOf aggregates heterogeneous swarms into one bundle: peer arrival
// rates and sizes add (any peer wanting any file fetches the bundle);
// the bundle swarm's capacity is the capacity of the first swarm (the
// model assumes a common μ); the publisher process is given explicitly.
func BundleOf(swarms []SwarmParams, r, u float64) SwarmParams {
	if len(swarms) == 0 {
		panic("core: bundle of zero swarms")
	}
	b := SwarmParams{Mu: swarms[0].Mu, R: r, U: u}
	for _, s := range swarms {
		mustValidate(s)
		b.Lambda += s.Lambda
		b.Size += s.Size
	}
	return b
}

// ZipfBundle builds the §3.3.1 skewed-preference scenario: K contents
// share an aggregate peer arrival rate lambda with Zipf(δ) popularity
// p_k = c/k^δ, each of the given size. It returns the K per-content
// swarms (each with publisher process r, u) and the bundle of all of
// them (publisher process R, U).
func ZipfBundle(k int, lambda, delta, size, mu, r, u, bundleR, bundleU float64) (singles []SwarmParams, bundle SwarmParams) {
	if k < 1 {
		panic("core: bundle size must be ≥ 1")
	}
	weights := dist.ZipfWeights(k, delta)
	singles = make([]SwarmParams, k)
	for i := range singles {
		singles[i] = SwarmParams{
			Lambda: lambda * weights[i],
			Size:   size,
			Mu:     mu,
			R:      r,
			U:      u,
		}
	}
	return singles, BundleOf(singles, bundleR, bundleU)
}

// PerFileDownloadTime returns the mean download time a peer experiences
// per *file* when fetching a bundle of k files built from p with the
// given scaling. The bundle download time covers k files, so the
// per-file figure divides by k. This is the fair unit for Theorem 3.2
// comparisons ("mean download time of each file").
func (p SwarmParams) PerFileDownloadTime(k int, scaling PublisherScaling) float64 {
	return p.Bundle(k, scaling).DownloadTime() / float64(k)
}

// DownloadTimeCurve evaluates the bundle download time E[T(K)] for
// K = 1..maxK — the quantity plotted in Figure 3. The returned slice is
// indexed by K−1.
func (p SwarmParams) DownloadTimeCurve(maxK int, scaling PublisherScaling) []float64 {
	if maxK < 1 {
		panic("core: maxK must be ≥ 1")
	}
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		out[k-1] = p.Bundle(k, scaling).DownloadTime()
	}
	return out
}

// OptimalBundleSize returns the K in [1, maxK] minimising the bundle's
// mean download time E[T(K)] (§3.4's question), together with the whole
// curve (indexed by K−1).
func (p SwarmParams) OptimalBundleSize(maxK int, scaling PublisherScaling) (int, []float64) {
	curve := p.DownloadTimeCurve(maxK, scaling)
	best := 0
	for i, v := range curve {
		if v < curve[best] {
			best = i
		}
	}
	return best + 1, curve
}

// OptimalBundleSizeThreshold is OptimalBundleSize under the threshold-
// coverage model of §3.3.3 with a single intermittent publisher
// (eq. 16) — the setting of the §4.3 experiments. The returned download
// times are bundle download times S/μ + P/R.
func (p SwarmParams) OptimalBundleSizeThreshold(maxK, m int, scaling PublisherScaling) (int, []float64) {
	if maxK < 1 {
		panic("core: maxK must be ≥ 1")
	}
	curve := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		curve[k-1] = p.Bundle(k, scaling).SinglePublisherDownloadTime(m)
	}
	best := 0
	for i, v := range curve {
		if v < curve[best] {
			best = i
		}
	}
	return best + 1, curve
}

// AvailabilityGainExponent returns −log P(K) for the bundle of size k
// under the given scaling. Theorem 3.1 states this grows as Θ(K²); the
// scaling-law tests and benchmarks fit the returned exponents against K².
// It is +Inf when the bundle is fully available (P saturated to 0).
func (p SwarmParams) AvailabilityGainExponent(k int, scaling PublisherScaling) float64 {
	pk := p.Bundle(k, scaling).Unavailability()
	return -math.Log(pk)
}

// TheoremBounds reports the Theorem 3.2 bracket for bundling k files:
// the per-file download time can grow by at most a factor k (when
// service dominates), and can shrink by Θ(1/R) (when waiting dominates).
// It returns the ratio E[T_bundle-per-file]/E[T_single].
func (p SwarmParams) TheoremBounds(k int, scaling PublisherScaling) (ratio float64) {
	single := p.DownloadTime()
	per := p.PerFileDownloadTime(k, scaling)
	return per / single
}

// Lingering models §3.3.4: peers remain online as seeds for an average
// 1/gamma after completing a download. In the M/G/∞ view this simply
// extends the peer residence from s/μ to s/μ + 1/gamma.
type Lingering struct {
	SwarmParams
	// Gamma is the rate at which lingering seeds depart; the mean
	// lingering time is 1/Gamma. Gamma = +Inf (or 0 lingering) recovers
	// the selfish-peer model.
	Gamma float64
}

// PeerResidence returns the full mean peer residence s/μ + 1/γ.
func (l Lingering) PeerResidence() float64 {
	if l.Gamma <= 0 {
		return math.Inf(1)
	}
	return l.ServiceTime() + 1/l.Gamma
}

// BusyPeriod returns eq. (9) with the extended peer residence.
func (l Lingering) BusyPeriod() float64 {
	mustValidate(l.SwarmParams)
	res := l.PeerResidence()
	if math.IsInf(res, 1) {
		return math.Inf(1)
	}
	beta := l.Lambda + l.R
	q1 := 0.0
	if beta > 0 {
		q1 = l.Lambda / beta
	}
	return BusyPeriodExceptional(beta, l.U, res, l.U, q1)
}

// Unavailability returns eq. (10) under lingering.
func (l Lingering) Unavailability() float64 {
	if l.R == 0 {
		return 1
	}
	return unavailabilityFrom(l.BusyPeriod(), l.R)
}

// DownloadTime returns Lemma 3.2 under lingering. Lingering does not
// lengthen the download itself — only the busy period.
func (l Lingering) DownloadTime() float64 {
	if l.R == 0 {
		return math.Inf(1)
	}
	return l.ServiceTime() + l.Unavailability()/l.R
}

// LingeringForEquivalentLoad returns the mean lingering time 1/γ that
// peers of swarm 1 must contribute for the stand-alone swarm to carry
// the same offered load (hence comparable availability) as the bundle of
// swarms 1 and 2 — the balance condition of eq. (15):
//
//	s₁λ₁/μ + λ₁/γ = (λ₁+λ₂)(s₁+s₂)/μ
//
// It returns +Inf if swarm 1 alone can never match (λ₁ = 0).
func LingeringForEquivalentLoad(s1, s2, lambda1, lambda2, mu float64) float64 {
	if mu <= 0 {
		panic("core: capacity must be positive")
	}
	if lambda1 <= 0 {
		return math.Inf(1)
	}
	return ((lambda1+lambda2)*(s1+s2)/mu - s1*lambda1/mu) / lambda1
}

// EquivalentLingeringResidence returns the left side of eq. (15): the
// mean residence s₁/μ + 1/γ peers of content 1 must sustain, which the
// paper rewrites as (s₁+s₂)/μ·(1+λ₂/λ₁) to show it diverges as λ₁ → 0
// while the bundle costs only (s₁+s₂)/μ.
func EquivalentLingeringResidence(s1, s2, lambda1, lambda2, mu float64) float64 {
	inv := LingeringForEquivalentLoad(s1, s2, lambda1, lambda2, mu)
	if math.IsInf(inv, 1) {
		return math.Inf(1)
	}
	return s1/mu + inv
}
