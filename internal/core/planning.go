package core

import (
	"errors"
	"math"
)

// Planning helpers: the inverse problems a publisher actually faces.
// The forward model maps (λ, s, μ, r, u, K) to unavailability and
// download time; these functions solve for the cheapest knob that meets
// an availability or latency target — bundle size, publisher return
// rate, or seeding incentives (lingering).

// ErrUnachievable is returned when no setting within the searched range
// meets the target.
var ErrUnachievable = errors.New("core: target not achievable in the searched range")

// RequiredBundleSize returns the smallest K in [1, maxK] whose bundle
// meets the unavailability target (P ≤ target) under the given scaling.
func (p SwarmParams) RequiredBundleSize(target float64, maxK int, scaling PublisherScaling) (int, error) {
	mustValidate(p)
	if target <= 0 || target > 1 {
		return 0, errors.New("core: unavailability target must be in (0, 1]")
	}
	if maxK < 1 {
		return 0, errors.New("core: maxK must be ≥ 1")
	}
	// Unavailability is monotone non-increasing in K under both
	// scalings, so the first K that qualifies is minimal.
	for k := 1; k <= maxK; k++ {
		if p.Bundle(k, scaling).Unavailability() <= target {
			return k, nil
		}
	}
	return 0, ErrUnachievable
}

// RequiredPublisherRate returns the smallest publisher arrival rate r
// (searched in [lo, hi]) for which the swarm's unavailability drops to
// the target. Unavailability is strictly decreasing in r, so bisection
// applies.
func (p SwarmParams) RequiredPublisherRate(target, lo, hi float64) (float64, error) {
	mustValidate(p)
	if target <= 0 || target >= 1 {
		return 0, errors.New("core: unavailability target must be in (0, 1)")
	}
	if lo <= 0 || hi <= lo {
		return 0, errors.New("core: need 0 < lo < hi")
	}
	at := func(r float64) float64 {
		q := p
		q.R = r
		return q.Unavailability()
	}
	if at(hi) > target {
		return 0, ErrUnachievable
	}
	if at(lo) <= target {
		return lo, nil
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: r spans decades
		if at(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
		if hi/lo < 1+1e-12 {
			break
		}
	}
	return hi, nil
}

// RequiredLingering returns the smallest mean lingering time 1/γ
// (searched in [0, hi] seconds) that meets the unavailability target.
// Lingering extends peer residence, so unavailability is monotone
// non-increasing in 1/γ.
func (p SwarmParams) RequiredLingering(target, hi float64) (float64, error) {
	mustValidate(p)
	if target <= 0 || target >= 1 {
		return 0, errors.New("core: unavailability target must be in (0, 1)")
	}
	if hi <= 0 {
		return 0, errors.New("core: need hi > 0")
	}
	at := func(lg float64) float64 {
		if lg == 0 {
			return p.Unavailability()
		}
		return Lingering{SwarmParams: p, Gamma: 1 / lg}.Unavailability()
	}
	if at(0) <= target {
		return 0, nil
	}
	if at(hi) > target {
		return 0, ErrUnachievable
	}
	lo := 0.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if at(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-9*(1+hi) {
			break
		}
	}
	return hi, nil
}

// SeedingCost estimates the publisher-side seeding effort per unit time
// for a swarm: the long-run fraction of time a publisher is online
// (r·u/(1+r·u) for an alternating process) times its upload capacity.
// It lets a publisher compare "more seeding" against "more bundling" in
// common units (upload-capacity-seconds per second).
func (p SwarmParams) SeedingCost(uploadKBps float64) float64 {
	mustValidate(p)
	duty := p.R * p.U / (1 + p.R*p.U)
	return duty * uploadKBps
}

// PlanBundle evaluates the complete bundling plan for a catalog of
// swarms sharing one publisher process: it returns the per-title
// download times if everything is bundled together versus solo, and the
// bundle's unavailability. It is a convenience over BundleOf +
// DownloadTime for the examples and tools.
type PlanBundle struct {
	Bundle         SwarmParams
	SoloTimes      []float64
	BundleTime     float64
	Unavailability float64
}

// EvaluateBundle builds the plan for the given swarms and publisher
// process.
func EvaluateBundle(swarms []SwarmParams, r, u float64) PlanBundle {
	b := BundleOf(swarms, r, u)
	plan := PlanBundle{
		Bundle:         b,
		BundleTime:     b.DownloadTime(),
		Unavailability: b.Unavailability(),
	}
	for _, s := range swarms {
		plan.SoloTimes = append(plan.SoloTimes, s.DownloadTime())
	}
	return plan
}
