package core

import (
	"math"
	"testing"
	"testing/quick"

	"swarmavail/internal/dist"
	"swarmavail/internal/queue"
	"swarmavail/internal/stats"
)

func TestBusyPeriodHomogeneousClosedForm(t *testing.T) {
	// eq. (20): (e^{βα}−1)/β.
	got := BusyPeriodHomogeneous(0.04, 30)
	want := (math.Exp(1.2) - 1) / 0.04
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("E[B] = %v, want %v", got, want)
	}
	if got := BusyPeriodHomogeneous(0, 25); got != 25 {
		t.Fatalf("β=0: E[B] = %v, want 25", got)
	}
}

func TestBusyPeriodExceptionalReducesToHomogeneous(t *testing.T) {
	// q1 = 1 and θ = α1 makes everyone exchangeable: eq. (9) → eq. (20).
	for _, c := range []struct{ beta, alpha float64 }{
		{0.01, 50}, {0.05, 30}, {0.2, 10}, {0.001, 800},
	} {
		got := BusyPeriodExceptional(c.beta, c.alpha, c.alpha, 1, 1)
		want := BusyPeriodHomogeneous(c.beta, c.alpha)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("β=%v α=%v: eq9 %v vs eq20 %v", c.beta, c.alpha, got, want)
		}
	}
}

func TestBusyPeriodExceptionalReducesToEq19(t *testing.T) {
	// q1 = 1 with θ ≠ α reduces eq. (9) to eq. (19):
	// E[B] = θ + αθ·Σ (βα)^i / (i!·(α+iθ)).
	beta, alpha, theta := 0.03, 25.0, 125.0
	var sum float64
	term := 1.0
	for i := 1; i <= 500; i++ {
		term *= beta * alpha / float64(i)
		sum += term / (alpha + float64(i)*theta)
	}
	want := theta + alpha*theta*sum
	got := BusyPeriodExceptional(beta, theta, alpha, 1, 1)
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("eq9 %v vs eq19 %v", got, want)
	}
}

func TestBusyPeriodExceptionalZeroArrivals(t *testing.T) {
	if got := BusyPeriodExceptional(0, 300, 80, 300, 0.5); got != 300 {
		t.Fatalf("β=0 must return θ, got %v", got)
	}
}

func TestBusyPeriodExceptionalMatchesGeneralForm(t *testing.T) {
	// eq. (9) with q1 = 1 must agree with eq. (18) under an exponential
	// initiator transform.
	beta, alpha, theta := 0.02, 40.0, 200.0
	got := BusyPeriodExceptional(beta, theta, alpha, 1, 1)
	want := BusyPeriodExceptionalGeneral(beta, alpha, theta, ExpLaplace(theta))
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("eq9 %v vs eq18 %v", got, want)
	}
}

func TestBusyPeriodExceptionalMatchesSimulation(t *testing.T) {
	// Full two-class mixture against the M/G/∞ simulator: the defining
	// validation of the eq. (9) implementation.
	beta, theta, alpha1, alpha2, q1 := 0.02, 120.0, 40.0, 120.0, 0.8
	want := BusyPeriodExceptional(beta, theta, alpha1, alpha2, q1)

	r := dist.NewRand(200)
	cfg := queue.BusyPeriodConfig{
		Beta:  beta,
		First: dist.Exponential{Rate: 1 / theta},
		Service: dist.NewMixture(
			[]dist.Dist{dist.Exponential{Rate: 1 / alpha1}, dist.Exponential{Rate: 1 / alpha2}},
			[]float64{q1, 1 - q1},
		),
	}
	mean, ci := queue.MeanBusyPeriod(r, cfg, 40000)
	if math.Abs(mean-want) > 3*ci+0.02*want {
		t.Fatalf("simulated E[B] = %v ± %v vs analytic %v", mean, ci, want)
	}
}

func TestBusyPeriodExceptionalMatchesSimulationSwarmParameterisation(t *testing.T) {
	// The §3.3.1 parameterisation: β=λ+r, θ=α2=u, α1=s/μ, q1=λ/(λ+r).
	p := SwarmParams{Lambda: 0.01, Size: 4, Mu: 0.1, R: 0.004, U: 90}
	want := p.BusyPeriod()

	r := dist.NewRand(201)
	beta := p.Lambda + p.R
	cfg := queue.BusyPeriodConfig{
		Beta:  beta,
		First: dist.Exponential{Rate: 1 / p.U},
		Service: dist.NewMixture(
			[]dist.Dist{
				dist.Exponential{Rate: 1 / p.ServiceTime()},
				dist.Exponential{Rate: 1 / p.U},
			},
			[]float64{p.Lambda / beta, p.R / beta},
		),
	}
	mean, ci := queue.MeanBusyPeriod(r, cfg, 40000)
	if math.Abs(mean-want) > 3*ci+0.02*want {
		t.Fatalf("simulated E[B] = %v ± %v vs analytic %v", mean, ci, want)
	}
}

func TestBusyPeriodExceptionalGeneralHypoexponentialInitiator(t *testing.T) {
	// Lemma 3.3's virtual customer: initiator is max of n exponentials
	// (hypoexponential). Cross-check eq. (18) with simulation.
	n, mean := 3, 30.0
	hypo := dist.MaxOfExponentials(n, mean)
	beta, alpha := 0.03, 30.0
	want := BusyPeriodExceptionalGeneral(beta, alpha, hypo.Mean(),
		HypoexpLaplace(hypo.Rates))

	r := dist.NewRand(202)
	cfg := queue.BusyPeriodConfig{
		Beta:    beta,
		First:   hypo,
		Service: dist.Exponential{Rate: 1 / alpha},
	}
	got, ci := queue.MeanBusyPeriod(r, cfg, 40000)
	if math.Abs(got-want) > 3*ci+0.02*want {
		t.Fatalf("simulated E[B] = %v ± %v vs analytic %v", got, ci, want)
	}
}

func TestBusyPeriodSaturatesToInf(t *testing.T) {
	// β·ᾱ far beyond float range must saturate, not overflow or hang.
	got := BusyPeriodExceptional(10, 1000, 1000, 1000, 0.9)
	if !math.IsInf(got, 1) {
		t.Fatalf("expected +Inf, got %v", got)
	}
	if got := BusyPeriodHomogeneous(10, 1000); !math.IsInf(got, 1) {
		t.Fatalf("expected +Inf, got %v", got)
	}
}

func TestBusyPeriodExceptionalPanics(t *testing.T) {
	cases := []func(){
		func() { BusyPeriodExceptional(-1, 1, 1, 1, 0.5) },
		func() { BusyPeriodExceptional(1, 0, 1, 1, 0.5) },
		func() { BusyPeriodExceptional(1, 1, 1, 1, -0.1) },
		func() { BusyPeriodExceptional(1, 1, 1, 1, 1.1) },
		func() { BusyPeriodExceptional(1, 1, 0, 1, 0.5) },
		func() { BusyPeriodExceptional(1, 1, 1, 0, 0.5) },
		func() { BusyPeriodExceptional(math.NaN(), 1, 1, 1, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBusyPeriodMonotoneInArrivalRate(t *testing.T) {
	prev := 0.0
	for _, beta := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1} {
		eb := BusyPeriodExceptional(beta, 100, 50, 100, 0.7)
		if eb <= prev {
			t.Fatalf("E[B] not increasing in β at %v: %v ≤ %v", beta, eb, prev)
		}
		prev = eb
	}
}

func TestBusyPeriodMonotoneInServiceTime(t *testing.T) {
	prev := 0.0
	for _, a1 := range []float64{10, 20, 40, 80, 160} {
		eb := BusyPeriodExceptional(0.02, 100, a1, 100, 0.7)
		if eb <= prev {
			t.Fatalf("E[B] not increasing in α1 at %v: %v ≤ %v", a1, eb, prev)
		}
		prev = eb
	}
}

// Property: eq. (9) is always at least θ (the initiator's own stay) and
// never NaN over a broad random parameter grid.
func TestBusyPeriodExceptionalLowerBoundProperty(t *testing.T) {
	f := func(b, th, a1, a2, q uint16) bool {
		beta := float64(b%100) / 1000 // [0, 0.1)
		theta := float64(th%500) + 1  // [1, 500]
		alpha1 := float64(a1%300) + 1 // [1, 300]
		alpha2 := float64(a2%300) + 1 // [1, 300]
		q1 := float64(q%101) / 100    // [0, 1]
		eb := BusyPeriodExceptional(beta, theta, alpha1, alpha2, q1)
		return !math.IsNaN(eb) && eb >= theta-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the renormalised binomial expectation of a constant is that
// constant.
func TestBinomialExpectationConstantProperty(t *testing.T) {
	f := func(i uint8, p uint8, c uint16) bool {
		n := int(i%64) + 1
		prob := float64(p%101) / 100
		val := float64(c) + 1
		got := binomialExpectation(n, prob, func(int) float64 { return val })
		return math.Abs(got-val) < 1e-9*val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialExpectationLinearFunction(t *testing.T) {
	// E[J] for J ~ Bin(n, p) must be n·p.
	n, p := 40, 0.3
	got := binomialExpectation(n, p, func(j int) float64 { return float64(j) })
	if math.Abs(got-float64(n)*p) > 1e-6 {
		t.Fatalf("E[J] = %v, want %v", got, float64(n)*p)
	}
}

func TestMeanBusyPeriodHelperAgainstAccumulator(t *testing.T) {
	r := dist.NewRand(203)
	cfg := queue.BusyPeriodConfig{Beta: 0.01, Service: dist.Exponential{Rate: 0.05}}
	samples := queue.SimulateBusyPeriods(r, cfg, 2000)
	var acc stats.Accumulator
	for _, s := range samples {
		acc.Add(s.Length)
	}
	if acc.N() != 2000 {
		t.Fatalf("sample count %d", acc.N())
	}
}
