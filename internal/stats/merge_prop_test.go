package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// partition splits xs into k non-empty-ish random groups. Groups may
// come out empty — merging an empty partition must also be a no-op, so
// that case is part of the property, not an error.
func partition(rng *rand.Rand, xs []float64, k int) [][]float64 {
	groups := make([][]float64, k)
	for _, x := range xs {
		g := rng.Intn(k)
		groups[g] = append(groups[g], x)
	}
	return groups
}

// TestQuantileSketchMergePartitionInvariant: feeding a stream through K
// sketches split any which way and merging them back — in any order —
// must reproduce the sequential sketch exactly. This is the property
// the cluster gateway's scatter-gather reads stand on: byte-identical
// merged answers regardless of how swarms were partitioned.
func TestQuantileSketchMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		for i := range xs {
			// Mix of in-range, boundary and out-of-range values so the
			// under/over clamp paths merge correctly too.
			switch rng.Intn(10) {
			case 0:
				xs[i] = -rng.Float64()
			case 1:
				xs[i] = 1 + rng.Float64()
			default:
				xs[i] = rng.Float64()
			}
		}

		seq := NewAvailabilitySketch()
		for _, x := range xs {
			seq.Add(x)
		}

		k := 2 + rng.Intn(6)
		parts := partition(rng, xs, k)
		shards := make([]*QuantileSketch, k)
		for i, part := range parts {
			shards[i] = NewAvailabilitySketch()
			for _, x := range part {
				shards[i].Add(x)
			}
		}
		merged := NewAvailabilitySketch()
		for _, i := range rng.Perm(k) {
			merged.Merge(shards[i])
		}

		seqJSON, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		mergedJSON, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqJSON) != string(mergedJSON) {
			t.Fatalf("trial %d (n=%d, k=%d): merged sketch differs from sequential\nseq:    %s\nmerged: %s",
				trial, n, k, seqJSON, mergedJSON)
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			if a, b := seq.Quantile(q), merged.Quantile(q); a != b {
				t.Fatalf("trial %d: quantile(%g) %v != %v", trial, q, a, b)
			}
		}
	}
}

// TestAccumulatorMergePartitionInvariant: the moment accumulator is
// float-order-sensitive, so partition merges agree with the sequential
// result only to rounding — but that rounding must stay tiny (the
// relative error of a handful of reassociations), and the exact fields
// (n, min, max) must match exactly.
func TestAccumulatorMergePartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	relClose := func(a, b float64) bool {
		if a == b {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-9*scale
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 10
		}

		var seq Accumulator
		seq.AddAll(xs)

		k := 2 + rng.Intn(6)
		parts := partition(rng, xs, k)
		accs := make([]*Accumulator, k)
		for i, part := range parts {
			accs[i] = &Accumulator{}
			accs[i].AddAll(part)
		}
		var merged Accumulator
		for _, i := range rng.Perm(k) {
			merged.Merge(accs[i])
		}

		if merged.N() != seq.N() {
			t.Fatalf("trial %d: merged n=%d, sequential n=%d", trial, merged.N(), seq.N())
		}
		if merged.Min() != seq.Min() || merged.Max() != seq.Max() {
			t.Fatalf("trial %d: min/max (%v,%v) != (%v,%v)",
				trial, merged.Min(), merged.Max(), seq.Min(), seq.Max())
		}
		if !relClose(merged.Mean(), seq.Mean()) {
			t.Fatalf("trial %d: mean %v vs %v", trial, merged.Mean(), seq.Mean())
		}
		if !relClose(merged.Var(), seq.Var()) {
			t.Fatalf("trial %d: var %v vs %v", trial, merged.Var(), seq.Var())
		}
	}
}

// TestSketchJSONRoundTripExact: marshalling and unmarshalling a sketch
// must preserve it bit-for-bit — the WAL checkpoint and the gateway's
// /v1/state scatter-gather both ride on this.
func TestSketchJSONRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewAvailabilitySketch()
	for i := 0; i < 5000; i++ {
		s.Add(rng.Float64() * 1.2)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("sketch JSON round-trip not exact:\n%s\n%s", raw, raw2)
	}
}
