package stats

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// QuantileSketch is a mergeable, fixed-resolution quantile summary over
// a bounded value range [Lo, Hi]: a histogram with equal-width bins plus
// exact min/max. It is the streaming counterpart of ECDF for the online
// ingestion path (internal/ingest), where per-swarm availabilities
// arrive continuously across shards and must be summarised without
// retaining the sample.
//
// Accuracy: any quantile (and any CDF evaluation) is exact up to one bin
// width, (Hi−Lo)/bins — e.g. ±1/4096 ≈ 2.4e-4 for availabilities in
// [0,1] at the default resolution. Sketches with identical geometry
// merge losslessly (the merged sketch equals the sketch of the
// concatenated stream), which is what lets each ingest shard keep its
// own sketch and a reader fold them on demand.
type QuantileSketch struct {
	Lo, Hi   float64
	counts   []uint64
	n        uint64
	min, max float64
}

// DefaultSketchBins is the resolution used by the ingestion pipeline.
const DefaultSketchBins = 4096

// NewQuantileSketch creates an empty sketch over [lo, hi] with the given
// number of bins. It panics on invalid geometry: non-positive bins, a
// degenerate or inverted range (lo >= hi, which would make Resolution
// zero-or-negative and bin() divide by zero), or non-finite bounds
// (NaN/±Inf lo or hi, or a finite pair whose width overflows), under
// which bin() would convert NaN/Inf to int — undefined in Go.
func NewQuantileSketch(lo, hi float64, bins int) *QuantileSketch {
	if bins <= 0 || !(hi > lo) {
		panic("stats: quantile sketch needs hi > lo and positive bins")
	}
	if width := hi - lo; math.IsNaN(width) || math.IsInf(width, 0) {
		panic("stats: quantile sketch needs finite bounds")
	}
	return &QuantileSketch{Lo: lo, Hi: hi, counts: make([]uint64, bins)}
}

// NewAvailabilitySketch returns the standard sketch for availability
// fractions: [0, 1] at DefaultSketchBins resolution.
func NewAvailabilitySketch() *QuantileSketch {
	return NewQuantileSketch(0, 1, DefaultSketchBins)
}

// Resolution returns the bin width — the worst-case value error of
// Quantile and the x-resolution of At.
func (s *QuantileSketch) Resolution() float64 {
	return (s.Hi - s.Lo) / float64(len(s.counts))
}

// bin returns the bin index for x, clamping out-of-range values to the
// edge bins (min/max remain exact, so the clamp only affects shape).
func (s *QuantileSketch) bin(x float64) int {
	i := int((x - s.Lo) / (s.Hi - s.Lo) * float64(len(s.counts)))
	if i < 0 {
		return 0
	}
	if i >= len(s.counts) {
		return len(s.counts) - 1
	}
	return i
}

// Add records one observation.
func (s *QuantileSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.counts[s.bin(x)]++
	s.n++
}

// Merge folds other into s. Both sketches must share the same geometry.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other == nil {
		return
	}
	if other.Lo != s.Lo || other.Hi != s.Hi || len(other.counts) != len(s.counts) {
		panic("stats: merging quantile sketches with different geometry")
	}
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.n += other.n
}

// Clone returns an independent copy.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.counts = make([]uint64, len(s.counts))
	copy(c.counts, s.counts)
	return &c
}

// N returns the number of observations.
func (s *QuantileSketch) N() int { return int(s.n) }

// Min returns the smallest observation (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns an estimate of the q-quantile: the upper edge of the
// bin containing the ⌈q·n⌉-th order statistic, clamped to [Min, Max].
// NaN when empty.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := s.Lo + (float64(i)+1)*s.Resolution()
			if v > s.max {
				v = s.max
			}
			if v < s.min {
				v = s.min
			}
			return v
		}
	}
	return s.max
}

// sketchJSON is the wire form of a QuantileSketch: the full geometry
// plus the non-zero bins as [bin, count] pairs, so a sparse sketch (the
// common case — a few thousand swarms over 4096 bins) stays compact and
// a round trip is lossless. Floats survive encoding/json bitwise (Go
// emits the shortest representation that parses back exactly), which is
// what lets a gateway-merged sketch equal a locally merged one.
type sketchJSON struct {
	Lo     float64     `json:"lo"`
	Hi     float64     `json:"hi"`
	Bins   int         `json:"bins"`
	N      uint64      `json:"n"`
	Min    float64     `json:"min"`
	Max    float64     `json:"max"`
	Counts [][2]uint64 `json:"counts,omitempty"`
}

// MarshalJSON implements json.Marshaler. The scatter-gather read path
// (internal/cluster) ships per-node sketches in this form and merges
// them with Merge; the round trip is exact.
func (s *QuantileSketch) MarshalJSON() ([]byte, error) {
	w := sketchJSON{Lo: s.Lo, Hi: s.Hi, Bins: len(s.counts), N: s.n, Min: s.min, Max: s.max}
	for i, c := range s.counts {
		if c != 0 {
			w.Counts = append(w.Counts, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler. It validates the geometry
// and bin indices (wire data may come from a foreign node), so a decoded
// sketch is always safe to Merge or query.
func (s *QuantileSketch) UnmarshalJSON(data []byte) error {
	var w sketchJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Bins <= 0 || !(w.Hi > w.Lo) {
		return errors.New("stats: sketch wire form needs hi > lo and positive bins")
	}
	if width := w.Hi - w.Lo; math.IsNaN(width) || math.IsInf(width, 0) {
		return errors.New("stats: sketch wire form needs finite bounds")
	}
	counts := make([]uint64, w.Bins)
	var total uint64
	for _, pair := range w.Counts {
		if pair[0] >= uint64(w.Bins) {
			return fmt.Errorf("stats: sketch wire bin %d out of range (%d bins)", pair[0], w.Bins)
		}
		counts[pair[0]] += pair[1]
		total += pair[1]
	}
	if total != w.N {
		return fmt.Errorf("stats: sketch wire counts sum to %d, header says %d", total, w.N)
	}
	s.Lo, s.Hi, s.counts, s.n = w.Lo, w.Hi, counts, w.N
	if w.N == 0 {
		s.min, s.max = 0, 0
	} else {
		s.min, s.max = w.Min, w.Max
	}
	return nil
}

// At returns the estimated CDF value F(x) = P[X ≤ x]: the fraction of
// observations in bins entirely at or below x.
func (s *QuantileSketch) At(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	if x < s.min {
		return 0
	}
	if x >= s.max {
		return 1
	}
	// Bins [0, k) lie entirely ≤ x when their upper edge ≤ x.
	k := int(math.Floor((x - s.Lo) / (s.Hi - s.Lo) * float64(len(s.counts))))
	if k <= 0 {
		return 0
	}
	if k > len(s.counts) {
		k = len(s.counts)
	}
	var cum uint64
	for i := 0; i < k; i++ {
		cum += s.counts[i]
	}
	return float64(cum) / float64(s.n)
}
