package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if !almostEqual(a.Var(), 32.0/7, 1e-12) {
		t.Fatalf("var = %v", a.Var())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.StdErr() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	a.Add(3)
	if a.Var() != 0 || a.Mean() != 3 {
		t.Fatalf("single observation: mean=%v var=%v", a.Mean(), a.Var())
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
	}
	var whole, left, right Accumulator
	whole.AddAll(xs)
	left.AddAll(xs[:300])
	right.AddAll(xs[300:])
	left.Merge(&right)
	if !almostEqual(whole.Mean(), left.Mean(), 1e-9) {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(whole.Var(), left.Var(), 1e-9) {
		t.Fatalf("merged var %v vs %v", left.Var(), whole.Var())
	}
	if whole.Min() != left.Min() || whole.Max() != left.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	b.Add(4)
	a.Merge(&b) // empty ← non-empty
	if a.N() != 1 || a.Mean() != 4 {
		t.Fatal("merge into empty failed")
	}
	var c Accumulator
	a.Merge(&c) // non-empty ← empty
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestMeanErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("err = %v", err)
	}
	if m := MustMean([]float64{1, 2, 3}); !almostEqual(m, 2, 1e-12) {
		t.Fatalf("MustMean = %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustMean should panic on empty")
		}
	}()
	MustMean(nil)
}

func TestVariance(t *testing.T) {
	v, err := Variance([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 5.0/3, 1e-12) {
		t.Fatalf("var = %v", v)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Fatal("variance of single sample should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	med, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(med, 3.5, 1e-12) {
		t.Fatalf("median = %v", med)
	}
	q0, _ := Quantile(xs, 0)
	q1, _ := Quantile(xs, 1)
	if q0 != 1 || q1 != 9 {
		t.Fatalf("extremes = %v %v", q0, q1)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatal("empty quantile should error")
	}
	// Input must not be modified.
	if xs[0] != 3 {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantileSingle(t *testing.T) {
	q, err := Quantile([]float64{7}, 0.3)
	if err != nil || q != 7 {
		t.Fatalf("single-element quantile = %v, %v", q, err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Median, 50, 1e-9) || !almostEqual(s.Q1, 25, 1e-9) || !almostEqual(s.Q3, 75, 1e-9) {
		t.Fatalf("quartiles: %+v", s)
	}
	if !almostEqual(s.P5, 5, 1e-9) || !almostEqual(s.P95, 95, 1e-9) {
		t.Fatalf("percentiles: %+v", s)
	}
	if s.N != 101 || !almostEqual(s.Mean, 50, 1e-9) {
		t.Fatalf("N/mean: %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty summarize should error")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var small, large Accumulator
	for i := 0; i < 100; i++ {
		small.Add(r.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(r.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

// Property: Welford accumulator agrees with the two-pass formulas.
func TestAccumulatorMatchesTwoPassProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		var a Accumulator
		a.AddAll(xs)
		m := MustMean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		v := ss / float64(len(xs)-1)
		return almostEqual(a.Mean(), m, 1e-6*math.Abs(m)+1e-9) &&
			almostEqual(a.Var(), v, 1e-6*v+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int8, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(xs, q1)
		v2, err2 := Quantile(xs, q2)
		return err1 == nil && err2 == nil && v1 <= v2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
