package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a fixed
// sample. It backs Figure 1 (CDF of seed availability).
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied, then sorted).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P[X ≤ x].
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Count of values ≤ x = index of first value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	return quantileSorted(e.sorted, q)
}

// Points returns (x, F(x)) pairs suitable for plotting: the sorted unique
// sample values with their cumulative probabilities.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue // keep only the last (highest-F) point per x
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// Histogram is a fixed-width binned count over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram builds a histogram with bins equal-width bins over
// [lo, hi). It panics on invalid parameters.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge case at Hi-ε
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the counts below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the normalised density estimate per bin (integrates to
// the in-range fraction).
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / (float64(h.total) * w)
	}
	return out
}

// TimeSeries bins (time, value-less) events into fixed-width time buckets
// and reports per-bucket counts — the building block of Figure 7 (peer
// arrivals per interval) and Figure 4 (completions over time).
type TimeSeries struct {
	Width  float64
	counts map[int]int
	maxBin int
}

// NewTimeSeries creates a series with the given bucket width (seconds).
func NewTimeSeries(width float64) *TimeSeries {
	if width <= 0 {
		panic("stats: time series bucket width must be positive")
	}
	return &TimeSeries{Width: width, counts: make(map[int]int), maxBin: -1}
}

// Record counts an event at time t (t < 0 is ignored).
func (ts *TimeSeries) Record(t float64) {
	if t < 0 {
		return
	}
	b := int(t / ts.Width)
	ts.counts[b]++
	if b > ts.maxBin {
		ts.maxBin = b
	}
}

// Counts returns the dense per-bucket counts from bucket 0 through the
// last non-empty bucket.
func (ts *TimeSeries) Counts() []int {
	if ts.maxBin < 0 {
		return nil
	}
	out := make([]int, ts.maxBin+1)
	for b, c := range ts.counts {
		out[b] = c
	}
	return out
}

// Cumulative returns the running total per bucket (e.g. cumulative
// completed downloads over time, Figure 4).
func (ts *TimeSeries) Cumulative() []int {
	cs := ts.Counts()
	for i := 1; i < len(cs); i++ {
		cs[i] += cs[i-1]
	}
	return cs
}

// CoefficientOfVariation returns stddev/mean of the bucket counts — the
// statistic that separates bursty new-swarm arrivals from steady
// old-swarm arrivals in §4.3.4.
func (ts *TimeSeries) CoefficientOfVariation() float64 {
	cs := ts.Counts()
	if len(cs) == 0 {
		return 0
	}
	var acc Accumulator
	for _, c := range cs {
		acc.Add(float64(c))
	}
	if acc.Mean() == 0 {
		return 0
	}
	return acc.StdDev() / acc.Mean()
}

// KSDistance returns the Kolmogorov–Smirnov statistic
// sup_x |F_a(x) − F_b(x)| between two empirical CDFs — the measure used
// to compare the first-month and whole-trace availability distributions
// of Figure 1. It returns NaN when either sample is empty.
func KSDistance(a, b *ECDF) float64 {
	if a.N() == 0 || b.N() == 0 {
		return math.NaN()
	}
	var d float64
	// The supremum is attained at a sample point of either CDF.
	for _, xs := range [][]float64{a.sorted, b.sorted} {
		for _, x := range xs {
			if diff := math.Abs(a.At(x) - b.At(x)); diff > d {
				d = diff
			}
		}
	}
	return d
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples, or NaN when undefined.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var ax, ay Accumulator
	ax.AddAll(xs)
	ay.AddAll(ys)
	var cov float64
	for i := range xs {
		cov += (xs[i] - ax.Mean()) * (ys[i] - ay.Mean())
	}
	cov /= float64(len(xs) - 1)
	den := ax.StdDev() * ay.StdDev()
	if den == 0 {
		return math.NaN()
	}
	return cov / den
}
