package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileSketchAgainstECDF(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewAvailabilitySketch()
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mixture resembling availability data: mass at 0, mass near 1,
		// and a spread in between.
		var x float64
		switch {
		case i%5 == 0:
			x = 0
		case i%5 == 1:
			x = 1
		default:
			x = r.Float64()
		}
		s.Add(x)
		xs = append(xs, x)
	}
	e := NewECDF(xs)
	tol := s.Resolution()
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, want := s.Quantile(q), e.Quantile(q)
		if math.Abs(got-want) > tol+1e-12 {
			t.Errorf("Quantile(%v) = %v, ECDF %v (tol %v)", q, got, want, tol)
		}
	}
	for _, x := range []float64{0, 0.2, 0.5, 0.8, 1} {
		got, want := s.At(x), e.At(x)
		// A bin of probability mass can straddle x.
		if math.Abs(got-want) > 0.25 {
			t.Errorf("At(%v) = %v, ECDF %v", x, got, want)
		}
	}
	if s.N() != e.N() {
		t.Fatalf("N = %d, want %d", s.N(), e.N())
	}
}

func TestQuantileSketchMergeEqualsConcat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	whole := NewAvailabilitySketch()
	parts := make([]*QuantileSketch, 4)
	for i := range parts {
		parts[i] = NewAvailabilitySketch()
	}
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		whole.Add(x)
		parts[i%4].Add(x)
	}
	merged := NewAvailabilitySketch()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge metadata mismatch: %d/%v/%v vs %d/%v/%v",
			merged.N(), merged.Min(), merged.Max(), whole.N(), whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v, whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestQuantileSketchEdges(t *testing.T) {
	s := NewQuantileSketch(0, 1, 16)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch quantile must be NaN")
	}
	if s.At(0.5) != 0 {
		t.Fatal("empty sketch CDF must be 0")
	}
	s.Add(math.NaN()) // ignored
	if s.N() != 0 {
		t.Fatal("NaN must be ignored")
	}
	// Out-of-range values clamp into edge bins but keep exact min/max.
	s.Add(-3)
	s.Add(7)
	if s.Min() != -3 || s.Max() != 7 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0); q != -3 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := s.Quantile(1); q != 7 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	// Single value: every quantile is that value.
	one := NewQuantileSketch(0, 1, 16)
	one.Add(0.42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); math.Abs(got-0.42) > one.Resolution() {
			t.Fatalf("Quantile(%v) = %v", q, got)
		}
	}
	// Clone independence.
	c := one.Clone()
	c.Add(0.9)
	if one.N() != 1 || c.N() != 2 {
		t.Fatalf("clone not independent: %d/%d", one.N(), c.N())
	}
	// Geometry mismatch must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("geometry mismatch must panic")
		}
	}()
	one.Merge(NewQuantileSketch(0, 2, 16))
}

// TestQuantileSketchGeometryValidation pins the constructor's contract:
// every degenerate geometry panics at construction instead of surfacing
// later as a divide-by-zero bin index or an undefined float→int
// conversion inside Add.
func TestQuantileSketchGeometryValidation(t *testing.T) {
	cases := []struct {
		name    string
		lo, hi  float64
		bins    int
	}{
		{"zero bins", 0, 1, 0},
		{"negative bins", 0, 1, -4},
		{"lo equals hi", 0.5, 0.5, 16},
		{"inverted range", 1, 0, 16},
		{"NaN lo", math.NaN(), 1, 16},
		{"NaN hi", 0, math.NaN(), 16},
		{"-Inf lo", math.Inf(-1), 1, 16},
		{"+Inf hi", 0, math.Inf(1), 16},
		{"finite pair with overflowing width", -math.MaxFloat64, math.MaxFloat64, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewQuantileSketch(%v, %v, %d) must panic", tc.lo, tc.hi, tc.bins)
				}
			}()
			NewQuantileSketch(tc.lo, tc.hi, tc.bins)
		})
	}
}

// TestQuantileSketchAddHiEdgeBin pins the upper-edge binning rule:
// x == Hi maps exactly onto the bin boundary past the last bin and must
// clamp into the last bin — not panic, not vanish.
func TestQuantileSketchAddHiEdgeBin(t *testing.T) {
	s := NewQuantileSketch(0, 1, 8)
	s.Add(1.0)
	if got := s.counts[len(s.counts)-1]; got != 1 {
		t.Fatalf("Add(Hi) landed %d observations in the last bin, want 1", got)
	}
	for i, c := range s.counts[:len(s.counts)-1] {
		if c != 0 {
			t.Fatalf("Add(Hi) leaked into bin %d", i)
		}
	}
	if s.N() != 1 || s.Min() != 1 || s.Max() != 1 {
		t.Fatalf("N/Min/Max = %d/%v/%v after Add(Hi)", s.N(), s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("Quantile(0.5) = %v after Add(Hi), want 1", q)
	}
	if f := s.At(1); f != 1 {
		t.Fatalf("At(Hi) = %v, want 1", f)
	}

	// Lo lands in the first bin; the two edges stay distinguishable.
	s.Add(0)
	if s.counts[0] != 1 {
		t.Fatalf("Add(Lo) must land in the first bin")
	}
	if q := s.Quantile(0.25); q < 0 || q > s.Resolution() {
		t.Fatalf("Quantile(0.25) = %v, want within one bin of 0", q)
	}
}
