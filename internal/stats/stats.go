// Package stats provides the summary statistics used by the measurement
// analysis, the simulators, and the experiment harness: streaming
// accumulators, quantiles, empirical CDFs, histograms, boxplot summaries,
// confidence intervals, and time-binned series.
//
// Everything is plain float64 math on slices — no external numeric
// dependencies — with the numerically stable formulations (Welford) where
// it matters.
package stats

import (
	"encoding/json"
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Accumulator maintains streaming count/mean/variance via Welford's
// algorithm plus min and max. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddAll records every observation in xs.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// Merge folds another accumulator into a (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n, a.mean, a.m2 = n, mean, m2
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns sqrt(Var).
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns a 95% normal-approximation confidence half-width for the
// mean. (At the sample sizes used in the experiments, the z and t
// critical values are indistinguishable.)
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// accumulatorJSON is the wire form of an Accumulator: the exact Welford
// state, so a round trip is lossless and merged/serialized accumulators
// stay bitwise-consistent (internal/ingest checkpoints depend on this).
type accumulatorJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (a Accumulator) MarshalJSON() ([]byte, error) {
	return json.Marshal(accumulatorJSON{N: a.n, Mean: a.mean, M2: a.m2, Min: a.min, Max: a.max})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Accumulator) UnmarshalJSON(data []byte) error {
	var w accumulatorJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return errors.New("stats: accumulator with negative count")
	}
	a.n, a.mean, a.m2, a.min, a.max = w.N, w.Mean, w.M2, w.Min, w.Max
	return nil
}

// Mean returns the mean of xs, or an error on empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already checked non-emptiness.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	var acc Accumulator
	acc.AddAll(xs)
	return acc.Var(), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// xs does not need to be sorted; it is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	h := q * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// Median returns the 0.5-quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// FiveNumber is the boxplot summary used to render Figure 6(c): quartiles
// plus the 5th and 95th percentiles ("the boxplots and lines show the
// distribution quartiles and 5th and 95th percentiles").
type FiveNumber struct {
	P5, Q1, Median, Q3, P95 float64
	Mean                    float64
	N                       int
}

// Summarize computes a FiveNumber from xs.
func Summarize(xs []float64) (FiveNumber, error) {
	if len(xs) == 0 {
		return FiveNumber{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	m, _ := Mean(xs)
	return FiveNumber{
		P5:     quantileSorted(s, 0.05),
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.50),
		Q3:     quantileSorted(s, 0.75),
		P95:    quantileSorted(s, 0.95),
		Mean:   m,
		N:      len(xs),
	}, nil
}
