package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(3) != 0 {
		t.Fatal("empty ECDF must be 0 everywhere")
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty ECDF quantile must be NaN")
	}
	xs, fs := e.Points()
	if xs != nil || fs != nil {
		t.Fatal("empty ECDF must have no points")
	}
}

func TestECDFPointsDeduplicated(t *testing.T) {
	e := NewECDF([]float64{5, 5, 5, 7})
	xs, fs := e.Points()
	if len(xs) != 2 || xs[0] != 5 || xs[1] != 7 {
		t.Fatalf("points xs = %v", xs)
	}
	if !almostEqual(fs[0], 0.75, 1e-12) || fs[1] != 1 {
		t.Fatalf("points fs = %v", fs)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("Q(0) = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Fatalf("Q(1) = %v", got)
	}
	if got := e.Quantile(0.5); !almostEqual(got, 30, 1e-12) {
		t.Fatalf("Q(0.5) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("out of range: %d %d", under, over)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("bin center = %v", got)
	}
}

func TestHistogramDensityIntegratesToInRangeFraction(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for i := 0; i < 90; i++ {
		h.Add(float64(i%10) / 10)
	}
	for i := 0; i < 10; i++ {
		h.Add(5) // out of range
	}
	d := h.Density()
	var integral float64
	for _, v := range d {
		integral += v * 0.1
	}
	if !almostEqual(integral, 0.9, 1e-9) {
		t.Fatalf("density integral = %v, want 0.9", integral)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(10)
	for _, tm := range []float64{0, 5, 9.99, 10, 25, 25, -3} {
		ts.Record(tm)
	}
	counts := ts.Counts()
	want := []int{3, 1, 2}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	cum := ts.Cumulative()
	if cum[2] != 6 {
		t.Fatalf("cumulative = %v", cum)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(1)
	if ts.Counts() != nil || ts.Cumulative() != nil {
		t.Fatal("empty series must return nil")
	}
	if ts.CoefficientOfVariation() != 0 {
		t.Fatal("empty series CV must be 0")
	}
}

func TestTimeSeriesCVSeparatesBurstyFromSteady(t *testing.T) {
	steady := NewTimeSeries(10)
	bursty := NewTimeSeries(10)
	for i := 0; i < 1000; i++ {
		steady.Record(float64(i)) // one per second, uniform
	}
	for i := 0; i < 1000; i++ {
		// All arrivals crowd into the first 5% of the horizon, then
		// a trickle: flash-crowd-like.
		if i < 950 {
			bursty.Record(float64(i) * 0.05)
		} else {
			bursty.Record(float64(i))
		}
	}
	if bursty.CoefficientOfVariation() <= steady.CoefficientOfVariation() {
		t.Fatalf("CV bursty %v should exceed steady %v",
			bursty.CoefficientOfVariation(), steady.CoefficientOfVariation())
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
	if !math.IsNaN(Correlation(xs, ys[:3])) {
		t.Fatal("mismatched lengths must yield NaN")
	}
	if !math.IsNaN(Correlation([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("zero-variance input must yield NaN")
	}
}

func TestKSDistance(t *testing.T) {
	a := NewECDF([]float64{1, 2, 3, 4})
	if got := KSDistance(a, a); got != 0 {
		t.Fatalf("self distance %v", got)
	}
	// Disjoint supports: distance 1.
	b := NewECDF([]float64{10, 11, 12})
	if got := KSDistance(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("disjoint distance %v", got)
	}
	// Known case: {1,2} vs {2,3}: F_a(1)=.5 vs F_b(1)=0 → D = 0.5.
	c := NewECDF([]float64{1, 2})
	d := NewECDF([]float64{2, 3})
	if got := KSDistance(c, d); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", got)
	}
	// Symmetry.
	if KSDistance(c, d) != KSDistance(d, c) {
		t.Fatal("KS not symmetric")
	}
	if !math.IsNaN(KSDistance(a, NewECDF(nil))) {
		t.Fatal("empty sample must give NaN")
	}
}

// Property: KS distance is within [0,1] and zero against itself.
func TestKSDistanceProperty(t *testing.T) {
	f := func(raw1, raw2 []int8) bool {
		if len(raw1) == 0 || len(raw2) == 0 {
			return true
		}
		xs := make([]float64, len(raw1))
		for i, v := range raw1 {
			xs[i] = float64(v)
		}
		ys := make([]float64, len(raw2))
		for i, v := range raw2 {
			ys[i] = float64(v)
		}
		a, b := NewECDF(xs), NewECDF(ys)
		d := KSDistance(a, b)
		return d >= 0 && d <= 1 && KSDistance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []int8, probe []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		e := NewECDF(xs)
		prev := -1.0
		for _, p := range probe {
			v := e.At(float64(p))
			if v < 0 || v > 1 {
				return false
			}
		}
		for x := -128.0; x <= 128; x += 8 {
			v := e.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram never loses observations.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 13)
		for _, v := range raw {
			h.Add(float64(v))
		}
		var in int
		for _, c := range h.Counts {
			in += c
		}
		under, over := h.OutOfRange()
		return in+under+over == h.Total() && h.Total() == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
