package faultnet

import (
	"net"
	"sync/atomic"
	"time"
)

// conn applies mid-stream faults: latency per delivering op, bandwidth
// pacing on writes, probabilistic resets, and truncated writes. Once a
// fault resets the connection, every subsequent operation fails — both
// sides observe the death, like a real RST.
type conn struct {
	net.Conn
	net   *Network
	reset atomic.Bool
}

// kill closes the underlying connection and marks it reset.
func (c *conn) kill() {
	c.reset.Store(true)
	_ = c.Conn.Close()
}

func (c *conn) Read(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrReset
	}
	if c.net.chance(c.net.cfg.ResetProb) {
		c.net.mu.Lock()
		c.net.stats.Resets++
		c.net.mu.Unlock()
		c.kill()
		return 0, ErrReset
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.net.sleep()
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.reset.Load() {
		return 0, ErrReset
	}
	if c.net.chance(c.net.cfg.ResetProb) {
		c.net.mu.Lock()
		c.net.stats.Resets++
		c.net.mu.Unlock()
		c.kill()
		return 0, ErrReset
	}
	if c.net.chance(c.net.cfg.TruncateProb) {
		c.net.mu.Lock()
		c.net.stats.Truncations++
		c.net.mu.Unlock()
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.kill()
		return n, ErrReset
	}
	c.net.sleep()
	c.pace(len(p))
	return c.Conn.Write(p)
}

// pace sleeps long enough that n bytes respect the bandwidth cap.
func (c *conn) pace(n int) {
	bw := c.net.cfg.BandwidthKBps
	if bw <= 0 || n == 0 {
		return
	}
	time.Sleep(time.Duration(float64(n) / (bw * 1024) * float64(time.Second)))
}
