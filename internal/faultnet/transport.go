package faultnet

import (
	"fmt"
	"net/http"
)

// RoundTripper wraps base (nil = http.DefaultTransport) so that HTTP
// requests pass through the fault layer: partitions and DropProb deny
// requests before they are sent, and latency delays them. Denied
// requests fail with a Temporary error, the shape tracker-announce and
// ingest-client retry logic must absorb.
func (n *Network) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{base: base, net: n}
}

type transport struct {
	base http.RoundTripper
	net  *Network
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.net.mu.Lock()
	t.net.stats.Dials++
	t.net.mu.Unlock()
	if t.net.unreachable(req.URL.Host) {
		t.net.mu.Lock()
		t.net.stats.DialsDenied++
		t.net.mu.Unlock()
		return nil, fmt.Errorf("faultnet: %s %s: %w", req.Method, req.URL, ErrPartitioned)
	}
	if t.net.chance(t.net.cfg.DropProb) {
		t.net.mu.Lock()
		t.net.stats.DialsDenied++
		t.net.mu.Unlock()
		return nil, fmt.Errorf("faultnet: %s %s: %w", req.Method, req.URL, ErrReset)
	}
	t.net.sleep()
	return t.base.RoundTrip(req)
}
