package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// echoServer accepts one connection at a time and echoes bytes back.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_, _ = io.Copy(c, c)
			}(c)
		}
	}()
}

func TestCleanNetworkPassesTraffic(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n := New(Config{Seed: 1})
	fln := n.Listener(ln)
	echoServer(t, fln)

	c, err := n.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("hello through the fault layer")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	st := n.Stats()
	if st.Dials != 1 || st.Conns != 2 || st.Resets != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeterministicDecisionStream(t *testing.T) {
	// The same seed must produce the same accept/deny sequence.
	decide := func(seed int64) []bool {
		n := New(Config{Seed: seed, DropProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = n.chance(n.cfg.DropProb)
		}
		return out
	}
	a, b := decide(7), decide(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs with the same seed", i)
		}
	}
	c := decide(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestDialDropAndPartition(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	n := New(Config{Seed: 3, DropProb: 1})
	if _, err := n.Dial("tcp", addr, time.Second); !IsInjected(err) {
		t.Fatalf("DropProb=1 dial error = %v, want injected", err)
	}

	n2 := New(Config{Seed: 3})
	n2.KillHost(addr)
	if _, err := n2.Dial("tcp", addr, time.Second); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("killed-host dial error = %v, want ErrPartitioned", err)
	}
	n2.RestoreHost(addr)
	c, err := n2.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial after restore: %v", err)
	}
	c.Close()
	if st := n2.Stats(); st.DialsDenied != 1 {
		t.Fatalf("denied %d, want 1", st.DialsDenied)
	}
}

func TestMidStreamReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)

	n := New(Config{Seed: 5, ResetProb: 1})
	c, err := n.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("doomed")); !IsInjected(err) {
		t.Fatalf("write on ResetProb=1 conn: %v, want injected reset", err)
	}
	// Every subsequent op fails too.
	if _, err := c.Read(make([]byte, 1)); !IsInjected(err) {
		t.Fatalf("read after reset: %v, want injected reset", err)
	}
	if st := n.Stats(); st.Resets == 0 {
		t.Fatal("no reset counted")
	}
}

func TestTruncatedWrite(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	n := New(Config{Seed: 9, TruncateProb: 1})
	fc := n.Wrap(a)
	got := make(chan int, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		got <- len(buf)
	}()
	wrote, err := fc.Write(make([]byte, 1000))
	if !IsInjected(err) {
		t.Fatalf("truncated write error = %v, want injected", err)
	}
	if wrote >= 1000 {
		t.Fatalf("wrote %d bytes, want a strict prefix", wrote)
	}
	if delivered := <-got; delivered != wrote {
		t.Fatalf("peer saw %d bytes, writer reported %d", delivered, wrote)
	}
}

func TestBandwidthPacing(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	go func() { _, _ = io.Copy(io.Discard, b) }()
	// 64 KBps cap: 32 KB should take ≥ ~400ms.
	n := New(Config{Seed: 2, BandwidthKBps: 64})
	fc := n.Wrap(a)
	start := time.Now()
	if _, err := fc.Write(make([]byte, 32*1024)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 400*time.Millisecond {
		t.Fatalf("32KB at 64KBps took %v, want ≥400ms", el)
	}
}

func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	n := New(Config{Seed: 11})
	client := &http.Client{Transport: n.RoundTripper(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	n.KillHost(srv.Listener.Addr().String())
	if _, err := client.Get(srv.URL); !IsInjected(err) {
		t.Fatalf("request to killed host: %v, want injected", err)
	}
	n.RestoreHost(srv.Listener.Addr().String())

	drop := New(Config{Seed: 12, DropProb: 1})
	cl2 := &http.Client{Transport: drop.RoundTripper(nil)}
	if _, err := cl2.Get(srv.URL); err == nil {
		t.Fatal("DropProb=1 request succeeded")
	}
	if st := drop.Stats(); st.DialsDenied != 1 {
		t.Fatalf("denied %d, want 1", st.DialsDenied)
	}
}

func TestPartitionHealsAutomatically(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoServer(t, ln)
	addr := ln.Addr().String()

	n := New(Config{Seed: 4})
	n.Partition(50*time.Millisecond, addr)
	if _, err := n.Dial("tcp", addr, time.Second); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := n.Dial("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition never healed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
