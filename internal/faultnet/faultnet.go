// Package faultnet is a deterministic, seedable fault-injection layer
// for the repository's networking stacks. It wraps net.Conn,
// net.Listener, dial functions, and http.RoundTripper with controllable
// failure modes — added latency, bandwidth caps, probabilistic dial
// drops and mid-stream connection resets, write truncation, and
// scripted partitions / host-churn schedules — so the BitTorrent
// testbed and the availd ingest path can be exercised under the flaky
// conditions the paper's §4 PlanetLab deployment actually ran in
// (peer churn, dead trackers, partial connectivity).
//
// All probabilistic decisions are drawn from one seeded generator
// behind a mutex, so a fixed Config.Seed yields a reproducible
// *decision stream*: the k-th injected fault is the same across runs
// even though goroutine interleaving may assign it to a different
// connection. Counters of every injected fault are available via
// Stats for test assertions.
//
// Typical wiring:
//
//	net := faultnet.New(faultnet.Config{Seed: 42, ResetProb: 0.05})
//	node, _ := peer.New(peer.Config{..., Dial: net.Dial})
//	ln = net.Listener(ln)                        // fault accepted conns too
//	client := &http.Client{Transport: net.RoundTripper(nil)}
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config parameterises a Network. The zero value injects nothing.
type Config struct {
	// Seed initialises the decision stream (0 is a valid fixed seed).
	Seed int64

	// Latency is added to every dial and to every Read/Write that
	// delivers data. Jitter adds a uniform [0, Jitter) extra.
	Latency time.Duration
	Jitter  time.Duration

	// BandwidthKBps caps per-connection throughput by pacing Writes
	// (0 = unlimited).
	BandwidthKBps float64

	// DropProb is the probability a dial attempt fails outright
	// (connection refused / host unreachable).
	DropProb float64

	// ResetProb is the per-Read/Write probability the connection is
	// reset mid-stream (both directions die, as a TCP RST would).
	ResetProb float64

	// TruncateProb is the per-Write probability that only a prefix of
	// the buffer is written before the connection is reset — the
	// partial-transfer failure mode.
	TruncateProb float64

	// Datagram faults, applied by PacketConn and Datagram wrappers to
	// each outgoing datagram independently (UDP has no stream to reset):
	// LossProb drops it silently, DupProb sends it twice, ReorderProb
	// holds it back one slot so it arrives behind the next send.
	LossProb    float64
	DupProb     float64
	ReorderProb float64
}

// Stats counts the faults a Network has injected.
type Stats struct {
	Dials       uint64 // dial attempts seen
	DialsDenied uint64 // dials failed by DropProb or partition
	Resets      uint64 // mid-stream resets injected
	Truncations uint64 // truncated writes injected
	Conns       uint64 // connections wrapped

	Datagrams          uint64 // datagrams sent through packet wrappers
	DatagramsLost      uint64 // datagrams dropped by LossProb
	DatagramsDuped     uint64 // datagrams duplicated by DupProb
	DatagramsReordered uint64 // datagrams delayed one slot by ReorderProb
}

// errInjected distinguishes injected failures from real ones.
type errInjected struct{ op string }

func (e errInjected) Error() string { return "faultnet: injected " + e.op }

// Timeout and Temporary make injected faults look like ordinary
// transient network errors to retry logic.
func (e errInjected) Timeout() bool   { return false }
func (e errInjected) Temporary() bool { return true }

// ErrReset is returned (wrapped) from reads/writes on a reset
// connection and from dials denied by DropProb.
var ErrReset = errInjected{op: "connection reset"}

// ErrPartitioned is returned from dials blocked by a partition or a
// killed host.
var ErrPartitioned = errors.New("faultnet: host partitioned")

// IsInjected reports whether err originated from a faultnet injection
// (as opposed to a genuine network failure).
func IsInjected(err error) bool {
	var inj errInjected
	return errors.As(err, &inj) || errors.Is(err, ErrPartitioned)
}

// Network is one fault-injection domain: a shared decision stream,
// fault schedule, and host-liveness map.
type Network struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	down  map[string]bool // host:port (or host) → unreachable
	stats Stats
}

// New creates a Network with the given configuration.
func New(cfg Config) *Network {
	return &Network{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		down: make(map[string]bool),
	}
}

// chance draws one Bernoulli decision from the seeded stream.
func (n *Network) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64() < p
}

// delay returns the configured latency plus jitter for one operation.
func (n *Network) delay() time.Duration {
	d := n.cfg.Latency
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// sleep applies one latency delay, if any.
func (n *Network) sleep() {
	if d := n.delay(); d > 0 {
		time.Sleep(d)
	}
}

// KillHost makes every future dial to addr (a "host:port" endpoint or a
// bare host, matching either form) fail until RestoreHost — scripted
// host churn.
func (n *Network) KillHost(addr string) {
	n.mu.Lock()
	n.down[addr] = true
	n.mu.Unlock()
}

// RestoreHost reverses KillHost.
func (n *Network) RestoreHost(addr string) {
	n.mu.Lock()
	delete(n.down, addr)
	n.mu.Unlock()
}

// Partition kills both endpoints for the given duration, restoring them
// afterwards from a background timer — a scheduled transient partition.
func (n *Network) Partition(d time.Duration, addrs ...string) {
	for _, a := range addrs {
		n.KillHost(a)
	}
	time.AfterFunc(d, func() {
		for _, a := range addrs {
			n.RestoreHost(a)
		}
	})
}

// unreachable reports whether addr (host:port) is currently killed,
// by endpoint or by bare host.
func (n *Network) unreachable(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[addr] {
		return true
	}
	return err == nil && n.down[host]
}

// Stats snapshots the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Dial dials through the fault layer: partitions and DropProb can deny
// the attempt, latency delays it, and the resulting connection is
// wrapped for mid-stream faults. The signature matches
// peer.Config.Dial.
func (n *Network) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	n.stats.Dials++
	n.mu.Unlock()
	if n.unreachable(addr) {
		n.mu.Lock()
		n.stats.DialsDenied++
		n.mu.Unlock()
		return nil, fmt.Errorf("dial %s: %w", addr, ErrPartitioned)
	}
	if n.chance(n.cfg.DropProb) {
		n.mu.Lock()
		n.stats.DialsDenied++
		n.mu.Unlock()
		return nil, fmt.Errorf("dial %s: %w", addr, ErrReset)
	}
	n.sleep()
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.Wrap(c), nil
}

// Listener wraps ln so accepted connections pass through the fault
// layer.
func (n *Network) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, net: n}
}

type listener struct {
	net.Listener
	net *Network
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.Wrap(c), nil
}

// Wrap returns c with the Network's mid-stream faults applied to every
// Read and Write.
func (n *Network) Wrap(c net.Conn) net.Conn {
	n.mu.Lock()
	n.stats.Conns++
	n.mu.Unlock()
	return &conn{Conn: c, net: n}
}
