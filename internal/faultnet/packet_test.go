package faultnet

import (
	"net"
	"testing"
	"time"
)

// udpPair builds a connected client socket (wrapped by Datagram) and a
// raw server socket that records the datagrams it receives.
func udpPair(t *testing.T, n *Network) (client net.Conn, recv <-chan []byte) {
	t.Helper()
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	ch := make(chan []byte, 64)
	go func() {
		buf := make([]byte, 2048)
		for {
			rn, _, err := server.ReadFrom(buf)
			if err != nil {
				return
			}
			ch <- append([]byte(nil), buf[:rn]...)
		}
	}()
	raw, err := net.Dial("udp", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := n.Datagram(raw)
	t.Cleanup(func() { _ = c.Close() })
	return c, ch
}

func collect(recv <-chan []byte, want int, timeout time.Duration) [][]byte {
	var out [][]byte
	deadline := time.After(timeout)
	for len(out) < want {
		select {
		case p := <-recv:
			out = append(out, p)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestDatagramLoss(t *testing.T) {
	n := New(Config{Seed: 1, LossProb: 1.0})
	c, recv := udpPair(t, n)
	for i := 0; i < 5; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err) // loss must look like success
		}
	}
	if got := collect(recv, 1, 200*time.Millisecond); len(got) != 0 {
		t.Fatalf("LossProb=1 delivered %d datagrams", len(got))
	}
	st := n.Stats()
	if st.Datagrams != 5 || st.DatagramsLost != 5 {
		t.Fatalf("stats %+v, want 5 sent / 5 lost", st)
	}
}

func TestDatagramDuplication(t *testing.T) {
	n := New(Config{Seed: 1, DupProb: 1.0})
	c, recv := udpPair(t, n)
	if _, err := c.Write([]byte{42}); err != nil {
		t.Fatal(err)
	}
	got := collect(recv, 2, time.Second)
	if len(got) != 2 || got[0][0] != 42 || got[1][0] != 42 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", len(got))
	}
	if st := n.Stats(); st.DatagramsDuped != 1 {
		t.Fatalf("stats %+v, want 1 dup", st)
	}
}

func TestDatagramReorder(t *testing.T) {
	// First send is held, second flushes behind it: B then A.
	n := New(Config{Seed: 1, ReorderProb: 1.0})
	c, recv := udpPair(t, n)
	if _, err := c.Write([]byte{'A'}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{'B'}); err != nil {
		t.Fatal(err)
	}
	// With ReorderProb=1 every write is held one slot: A is held, B's
	// write releases A and holds B, Close flushes B. Both arrive, each
	// one slot late; the strict swap is covered separately below.
	_ = c.Close()
	got := collect(recv, 2, time.Second)
	if len(got) != 2 {
		t.Fatalf("delivered %d datagrams, want 2", len(got))
	}
	if st := n.Stats(); st.DatagramsReordered != 2 {
		t.Fatalf("stats %+v, want 2 reorders", st)
	}
}

func TestDatagramReorderSwapsOrder(t *testing.T) {
	// Seeded so exactly the first verdict is a hold: A is held, B
	// delivers and flushes A behind it → receive B, A.
	n := New(Config{Seed: 3, ReorderProb: 0.5})
	c, recv := udpPair(t, n)

	// Find a seed/offset where the first write holds and the second
	// delivers, by probing the decision stream clone.
	probe := New(Config{Seed: 3, ReorderProb: 0.5})
	first := probe.datagramVerdict()
	second := probe.datagramVerdict()
	if first != sendHold || second != sendDeliver {
		t.Skipf("seed 3 draws %v,%v — vector moved; adjust seed", first, second)
	}

	if _, err := c.Write([]byte{'A'}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{'B'}); err != nil {
		t.Fatal(err)
	}
	got := collect(recv, 2, time.Second)
	if len(got) != 2 {
		t.Fatalf("delivered %d datagrams, want 2", len(got))
	}
	if got[0][0] != 'B' || got[1][0] != 'A' {
		t.Fatalf("order %c,%c — want the held A behind B", got[0][0], got[1][0])
	}
}

func TestPacketConnFaults(t *testing.T) {
	n := New(Config{Seed: 1, LossProb: 1.0})
	server, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	raw, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc := n.PacketConn(raw)
	defer pc.Close()
	if _, err := pc.WriteTo([]byte{1}, server.LocalAddr()); err != nil {
		t.Fatalf("lost WriteTo must report success, got %v", err)
	}
	_ = server.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 16)
	if _, _, err := server.ReadFrom(buf); err == nil {
		t.Fatal("LossProb=1 still delivered via PacketConn")
	}
	if st := n.Stats(); st.DatagramsLost != 1 {
		t.Fatalf("stats %+v, want 1 lost", st)
	}
}

func TestDatagramZeroConfigPassesThrough(t *testing.T) {
	n := New(Config{Seed: 1})
	c, recv := udpPair(t, n)
	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(recv, 3, time.Second)
	if len(got) != 3 {
		t.Fatalf("zero config delivered %d/3", len(got))
	}
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("zero config reordered: got %d at %d", p[0], i)
		}
	}
	st := n.Stats()
	if st.DatagramsLost+st.DatagramsDuped+st.DatagramsReordered != 0 {
		t.Fatalf("zero config injected faults: %+v", st)
	}
}
