package faultnet

import (
	"net"
	"sync"
)

// Datagram faults are applied on the send side only: loss reports the
// write as successful without transmitting (exactly what a dropped UDP
// datagram looks like to the sender), duplication transmits twice, and
// reordering holds a datagram back one slot so it departs behind the
// next send (flushed on Close so nothing is stranded). Drawing from the
// shared decision stream keeps a fixed seed reproducible across the
// TCP and UDP fault paths alike.

// PacketConn wraps pc so every WriteTo passes through the Network's
// datagram faults. Reads are untouched — faulting one side of each
// exchange is enough to exercise loss, and keeps stats interpretable.
func (n *Network) PacketConn(pc net.PacketConn) net.PacketConn {
	return &packetConn{PacketConn: pc, net: n}
}

// Datagram wraps a connected datagram socket (e.g. from
// net.Dial("udp", ...)) so every Write passes through the Network's
// datagram faults. The tracker.UDPClient's Dial hook is the intended
// splice point.
func (n *Network) Datagram(c net.Conn) net.Conn {
	return &datagramConn{Conn: c, net: n}
}

// sendVerdict draws the per-datagram decision triple. Exactly one of
// the injections applies per datagram, tested in a fixed order, so the
// decision stream stays aligned across runs.
type sendVerdict int

const (
	sendDeliver sendVerdict = iota
	sendDrop
	sendDup
	sendHold
)

func (n *Network) datagramVerdict() sendVerdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Datagrams++
	if n.cfg.LossProb > 0 && n.rng.Float64() < n.cfg.LossProb {
		n.stats.DatagramsLost++
		return sendDrop
	}
	if n.cfg.DupProb > 0 && n.rng.Float64() < n.cfg.DupProb {
		n.stats.DatagramsDuped++
		return sendDup
	}
	if n.cfg.ReorderProb > 0 && n.rng.Float64() < n.cfg.ReorderProb {
		n.stats.DatagramsReordered++
		return sendHold
	}
	return sendDeliver
}

// packetConn applies datagram faults to WriteTo.
type packetConn struct {
	net.PacketConn
	net *Network

	mu       sync.Mutex
	held     []byte   // one datagram delayed by ReorderProb
	heldAddr net.Addr // its destination
}

func (c *packetConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	switch c.net.datagramVerdict() {
	case sendDrop:
		c.flush()
		return len(p), nil
	case sendDup:
		if _, err := c.PacketConn.WriteTo(p, addr); err != nil {
			return 0, err
		}
		n, err := c.PacketConn.WriteTo(p, addr)
		c.flush()
		return n, err
	case sendHold:
		c.mu.Lock()
		prev, prevAddr := c.held, c.heldAddr
		c.held = append([]byte(nil), p...)
		c.heldAddr = addr
		c.mu.Unlock()
		if prev != nil {
			if _, err := c.PacketConn.WriteTo(prev, prevAddr); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	n, err := c.PacketConn.WriteTo(p, addr)
	c.flush()
	return n, err
}

// flush releases a held datagram behind whatever triggered the call —
// delivering it after the current send is what makes it a reorder.
func (c *packetConn) flush() {
	c.mu.Lock()
	held, addr := c.held, c.heldAddr
	c.held, c.heldAddr = nil, nil
	c.mu.Unlock()
	if held != nil {
		_, _ = c.PacketConn.WriteTo(held, addr)
	}
}

func (c *packetConn) Close() error {
	c.flush()
	return c.PacketConn.Close()
}

// datagramConn applies datagram faults to Write on a connected socket.
type datagramConn struct {
	net.Conn
	net *Network

	mu   sync.Mutex
	held []byte
}

func (c *datagramConn) Write(p []byte) (int, error) {
	switch c.net.datagramVerdict() {
	case sendDrop:
		c.flush()
		return len(p), nil
	case sendDup:
		if _, err := c.Conn.Write(p); err != nil {
			return 0, err
		}
		n, err := c.Conn.Write(p)
		c.flush()
		return n, err
	case sendHold:
		c.mu.Lock()
		prev := c.held
		c.held = append([]byte(nil), p...)
		c.mu.Unlock()
		if prev != nil {
			if _, err := c.Conn.Write(prev); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	}
	n, err := c.Conn.Write(p)
	c.flush()
	return n, err
}

func (c *datagramConn) flush() {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	if held != nil {
		_, _ = c.Conn.Write(held)
	}
}

func (c *datagramConn) Close() error {
	c.flush()
	return c.Conn.Close()
}
