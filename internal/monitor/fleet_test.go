package monitor

import (
	"context"
	"net"
	"testing"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/bittorrent/wire"
	"swarmavail/internal/faultnet"
	"swarmavail/internal/ingest"
	"swarmavail/internal/trace"
)

// fleetHarness is a complete measurement pipeline on loopback: a UDP
// tracker, a tiny swarm of fake peers (one seed, one zero-piece quiet
// leecher), and an availd-style ingest engine behind the binary stream
// protocol.
type fleetHarness struct {
	tor     *metainfo.Torrent
	udpURL  string
	engine  *ingest.Engine
	addr    string // stream ingest address
	seed    string // fake seed's host:port
	leecher string // fake quiet leecher's host:port
}

func newFleetHarness(t testing.TB) *fleetHarness {
	t.Helper()
	info, err := metainfo.New("fleet-content", 4096,
		[]metainfo.File{{Path: "f.bin", Length: 16 * 1024}}, make([]byte, 16*1024))
	if err != nil {
		t.Fatal(err)
	}

	srv := tracker.NewServer()
	pc, closeUDP, err := srv.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = closeUDP() })
	udpURL := "udp://" + pc.LocalAddr().String()
	tor := &metainfo.Torrent{Announce: udpURL, Info: *info}
	ih, err := info.Hash()
	if err != nil {
		t.Fatal(err)
	}

	h := &fleetHarness{tor: tor, udpURL: udpURL}
	h.seed = fakePeer(t, ih, info.NumPieces(), true)
	h.leecher = fakePeer(t, ih, info.NumPieces(), false)

	// Register both fake peers over the UDP protocol itself.
	uc := &tracker.UDPClient{Timeout: 500 * time.Millisecond}
	for i, reg := range []struct {
		addr string
		left int64
	}{{h.seed, 0}, {h.leecher, 1 << 20}} {
		host, portStr, err := net.SplitHostPort(reg.addr)
		if err != nil {
			t.Fatal(err)
		}
		port := mustAtoi(t, portStr)
		var id [20]byte
		id[0] = byte('A' + i)
		if _, err := uc.Announce(tracker.AnnounceRequest{
			TrackerURL: udpURL, InfoHash: ih, PeerID: id,
			Port: port, Left: reg.left, Event: "started", IP: host,
		}); err != nil {
			t.Fatalf("register fake peer %d: %v", i, err)
		}
	}

	h.engine = ingest.New(ingest.Config{Shards: 2})
	t.Cleanup(h.engine.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := ingest.NewStreamServer(h.engine, nil)
	done := make(chan struct{})
	go func() { defer close(done); _ = ss.Serve(ln) }()
	t.Cleanup(func() { _ = ln.Close(); ss.Close(); <-done })
	h.addr = ln.Addr().String()
	return h
}

func mustAtoi(t testing.TB, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("bad port %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// fakePeer serves the probe-visible slice of the wire protocol: it
// handshakes and — when seed — advertises a complete bitfield; the
// leecher variant stays silent (the zero-piece case the probeOne bugfix
// covers).
func fakePeer(t testing.TB, ih metainfo.InfoHash, numPieces int, seed bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_ = c.SetDeadline(time.Now().Add(30 * time.Second))
				if _, err := wire.ReadHandshake(c); err != nil {
					return
				}
				var id [20]byte
				copy(id[:], "-SAFAKE-peer00000000")
				if err := wire.WriteHandshake(c, wire.Handshake{InfoHash: ih, PeerID: id}); err != nil {
					return
				}
				if seed {
					bf := wire.NewBitfield(numPieces)
					for i := 0; i < numPieces; i++ {
						bf.Set(i)
					}
					_ = wire.WriteMessage(c, &wire.Message{Type: wire.MsgBitfield, Bitfield: bf})
				}
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func testMeta(id int) *trace.SwarmMeta {
	return &trace.SwarmMeta{
		ID: id, Category: trace.Movies, Title: "fleet-test",
		Files: []trace.FileMeta{{Name: "f.bin", SizeKB: 16}},
	}
}

// runFleet drives a fleet against the harness and asserts the
// exactly-once pipeline invariant: every record handed to a stream
// client is applied by the engine exactly once — none lost, none
// duplicated — plus the swarm registration.
func runFleetTest(t *testing.T, h *fleetHarness, cfg Config) Stats {
	t.Helper()
	cfg.Torrent = h.tor
	cfg.SwarmID = 42
	cfg.Stream = ingest.StreamClientConfig{Addr: h.addr, Source: "fleet-test"}
	cfg.Meta = testMeta(42)
	cfg.HorizonDays = 30

	stats, err := (&mustFleet{t, cfg}).run()
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}

	m := h.engine.Metrics()
	wantApplied := stats.RecordsEmitted + 1 // + the MetaOp registration
	if m.Applied != wantApplied {
		t.Fatalf("engine applied %d ops, fleet emitted %d (+1 meta): lost/duplicated records",
			m.Applied, stats.RecordsEmitted)
	}
	if stats.Rounds == 0 || stats.Rounds == stats.ProbeFailures {
		t.Fatalf("no successful probe rounds (rounds=%d failures=%d)", stats.Rounds, stats.ProbeFailures)
	}
	if stats.SeedRounds == 0 {
		t.Fatal("no round observed the seed — probe pipeline is blind")
	}
	return stats
}

type mustFleet struct {
	t   *testing.T
	cfg Config
}

func (mf *mustFleet) run() (Stats, error) {
	f, err := New(mf.cfg)
	if err != nil {
		mf.t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return f.Run(ctx)
}

// TestFleetSmoke64 is the CI monitor-fleet job's assertion: 64
// concurrent monitors over the UDP tracker, exact streamed record
// count, race detector clean.
func TestFleetSmoke64(t *testing.T) {
	h := newFleetHarness(t)
	stats := runFleetTest(t, h, Config{
		Monitors:     64,
		Rounds:       2,
		Interval:     300 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		BitfieldWait: 150 * time.Millisecond,
		DialBudget:   32,
		UDP:          &tracker.UDPClient{Timeout: 500 * time.Millisecond, MaxRetransmits: 3},
	})
	// Each successful round sees the seed and the quiet leecher; with
	// 64 monitors × 2 rounds the record volume must be substantial.
	if stats.PeersObserved < 64 {
		t.Fatalf("only %d peer observations across the fleet", stats.PeersObserved)
	}
}

// TestFleetThousandMonitorsUnderDatagramLoss is the end-to-end
// acceptance proof: ≥1000 concurrent monitors announce over the BEP 15
// UDP tracker through 15%% datagram loss (plus duplication and
// reordering), stream observations into the engine via the binary
// protocol, and not one record is lost or double-applied.
func TestFleetThousandMonitorsUnderDatagramLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-monitor e2e skipped in -short")
	}
	h := newFleetHarness(t)
	fn := faultnet.New(faultnet.Config{
		Seed:        7,
		LossProb:    0.15,
		DupProb:     0.05,
		ReorderProb: 0.05,
	})
	uc := &tracker.UDPClient{
		// Short base timeout so loss-triggered retransmits stay cheap;
		// enough retries that a whole announce almost never dies.
		Timeout:        150 * time.Millisecond,
		MaxRetransmits: 6,
		Dial: func(addr string) (net.Conn, error) {
			raw, err := net.Dial("udp", addr)
			if err != nil {
				return nil, err
			}
			return fn.Datagram(raw), nil
		},
	}
	stats := runFleetTest(t, h, Config{
		Monitors:     1000,
		Rounds:       2,
		Interval:     500 * time.Millisecond,
		DialTimeout:  2 * time.Second,
		BitfieldWait: 100 * time.Millisecond,
		DialBudget:   128,
		UDP:          uc,
	})
	if fs := fn.Stats(); fs.DatagramsLost == 0 {
		t.Fatalf("fault layer injected no datagram loss (%+v) — the chaos half of the test is dead", fs)
	}
	t.Logf("fleet: %d rounds (%d failed), %d peers observed, %d records, faults: %+v",
		stats.Rounds, stats.ProbeFailures, stats.PeersObserved, stats.RecordsEmitted, fn.Stats())
}

// BenchmarkFleetIngest measures the probe→diff→stream→apply pipeline:
// synthetic probe rounds (100 peers, 10% churn per round) diffed and
// streamed into a live engine.
func BenchmarkFleetIngest(b *testing.B) {
	e := ingest.New(ingest.Config{Shards: 4})
	defer e.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ss := ingest.NewStreamServer(e, nil)
	done := make(chan struct{})
	go func() { defer close(done); _ = ss.Serve(ln) }()
	defer func() { _ = ln.Close(); ss.Close(); <-done }()

	sc := ingest.NewStreamClient(ingest.StreamClientConfig{
		Addr: ln.Addr().String(), Source: "bench-fleet",
	})
	if err := sc.Put(ingest.MetaOp(*testMeta(1), 30)); err != nil {
		b.Fatal(err)
	}

	const swarmPeers = 100
	diff := ingest.NewProbeDiff(1)
	round := make([]ingest.PeerObservation, swarmPeers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 10% churn: a sliding window over the peer-key space.
		base := uint64(i * swarmPeers / 10)
		for j := range round {
			round[j] = ingest.PeerObservation{Key: base + uint64(j) + 1, Seed: j%10 == 0}
		}
		for _, op := range diff.Ops(float64(i)*0.01, round) {
			if err := sc.Put(op); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := sc.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
}
