// Package monitor runs fleets of lightweight swarm monitors — the §2
// measurement methodology at production fan-in. Each monitor announces
// to the swarm's tracker (HTTP or BEP 15 UDP), probes the peers it
// learns about (PEX-assisted when enabled), diffs consecutive rounds
// into online/offline transitions, and streams the resulting records
// into availd/availgw over the binary ingest protocol with exactly-once
// keys. A Fleet is what cmd/btmon -fleet N drives.
package monitor

import (
	"context"
	"fmt"
	mrand "math/rand"
	"net/http"
	"sync"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/bittorrent/tracker"
	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
	"swarmavail/internal/trace"
)

// Config parameterises a Fleet.
type Config struct {
	// Torrent is the swarm to monitor.
	Torrent *metainfo.Torrent
	// SwarmID keys the streamed records (trace schema swarm id).
	SwarmID int
	// Monitors is the fleet size (1 if <= 0).
	Monitors int
	// Interval is the probe cadence per monitor (10s if 0). Each
	// monitor's rounds are offset by a deterministic jittered phase in
	// [0, Interval) so a thousand monitors do not thunder in step.
	Interval time.Duration
	// Rounds bounds the probe rounds per monitor (0 = until ctx ends).
	Rounds int
	// DialTimeout / BitfieldWait / PEX / NumWant pass through to
	// peer.ProbeConfig.
	DialTimeout  time.Duration
	BitfieldWait time.Duration
	PEX          bool
	NumWant      int
	// DialBudget caps fleet-wide concurrent probes; while the budget is
	// exhausted further monitors wait their turn (Monitors if <= 0,
	// i.e. effectively uncapped). This is the shared resource limit
	// that lets one host run a 1000-monitor fleet without exhausting
	// sockets.
	DialBudget int
	// HTTPClient / UDP perform the tracker announces, by URL scheme.
	HTTPClient *http.Client
	UDP        *tracker.UDPClient
	// Dial overrides the peer-probe dialer (faultnet goes here).
	Dial peer.DialFunc

	// Stream configures the binary ingest connection; its Source is
	// used as a prefix — monitor i streams as "<Source>-i" so every
	// monitor is its own exactly-once sender stream. Leave Addr and
	// Dial empty to run without streaming (summary only).
	Stream ingest.StreamClientConfig
	// Meta, when set, is registered (with HorizonDays) over the control
	// stream before any monitor emits events, so the engine knows the
	// swarm before its first transition arrives.
	Meta        *trace.SwarmMeta
	HorizonDays float64
	// Epoch anchors the trace clock: record Time = now - Epoch, in
	// days (time.Now at Run if zero).
	Epoch time.Time

	// Seed fixes the jitter phases (0 is a valid fixed seed).
	Seed int64
	// Logf, when set, receives per-round fleet progress lines.
	Logf func(format string, args ...any)
	// Metrics, when set, receives btmon_* series.
	Metrics *obs.Registry
	// OnRound, when set, is called after each monitor round with the
	// monitor index and its observation count (tests).
	OnRound func(monitor, round, peers int)
}

// Stats is a fleet run's summary.
type Stats struct {
	Monitors       int
	Rounds         int    // total rounds completed across the fleet
	ProbeFailures  int    // rounds whose announce failed
	PeersObserved  int    // peer observations summed over rounds
	SeedRounds     int    // rounds that saw at least one seed
	RecordsEmitted uint64 // records handed to stream clients
	FramesAcked    uint64 // DATA frames acknowledged by the ingest server
}

// Fleet is a configured monitor fleet; create with New, drive with Run.
type Fleet struct {
	cfg Config

	mu    sync.Mutex
	stats Stats

	mProbes   *obs.Counter
	mFailures *obs.Counter
	mPeers    *obs.Counter
	mRecords  *obs.Counter
}

// New validates cfg and builds a Fleet.
func New(cfg Config) (*Fleet, error) {
	if cfg.Torrent == nil {
		return nil, fmt.Errorf("monitor: torrent required")
	}
	if cfg.Monitors <= 0 {
		cfg.Monitors = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.DialBudget <= 0 {
		cfg.DialBudget = cfg.Monitors
	}
	f := &Fleet{cfg: cfg}
	reg := cfg.Metrics
	f.mProbes = reg.Counter("btmon_probes_total")
	f.mFailures = reg.Counter("btmon_probe_failures_total")
	f.mPeers = reg.Counter("btmon_peers_observed_total")
	f.mRecords = reg.Counter("btmon_records_emitted_total")
	return f, nil
}

// streaming reports whether records leave the process.
func (f *Fleet) streaming() bool {
	return f.cfg.Stream.Addr != "" || f.cfg.Stream.Dial != nil
}

// Run drives the fleet until every monitor finishes its rounds or ctx
// is cancelled, then flushes all streams and returns the tally. On
// cancellation each monitor still closes its differ (emitting final
// departures) and flushes, so Ctrl-C loses nothing that was observed.
func (f *Fleet) Run(ctx context.Context) (Stats, error) {
	cfg := f.cfg
	epoch := cfg.Epoch
	if epoch.IsZero() {
		epoch = time.Now()
	}

	// Register the swarm before any monitor can emit an event for it.
	if f.streaming() && cfg.Meta != nil {
		ctl := ingest.NewStreamClient(f.streamCfg("meta"))
		if err := ctl.Put(ingest.MetaOp(*cfg.Meta, cfg.HorizonDays)); err != nil {
			return f.snapshot(), fmt.Errorf("monitor: register swarm: %w", err)
		}
		if err := ctl.Close(); err != nil {
			return f.snapshot(), fmt.Errorf("monitor: register swarm: %w", err)
		}
	}

	// The dial budget is claimed per probe round, not per fleet member:
	// a waiting monitor costs a goroutine, not a socket.
	budget := make(chan struct{}, cfg.DialBudget)
	phaseRng := mrand.New(mrand.NewSource(cfg.Seed))
	phases := make([]time.Duration, cfg.Monitors)
	for i := range phases {
		phases[i] = time.Duration(phaseRng.Int63n(int64(cfg.Interval)))
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Monitors)
	for i := 0; i < cfg.Monitors; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if err := f.runMonitor(ctx, idx, phases[idx], epoch, budget); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	var firstErr error
	for err := range errs {
		if firstErr == nil {
			firstErr = err
		}
	}
	return f.snapshot(), firstErr
}

// streamCfg clones the stream config with a per-monitor Source so each
// monitor is an independent exactly-once sender stream.
func (f *Fleet) streamCfg(suffix string) ingest.StreamClientConfig {
	sc := f.cfg.Stream
	if sc.Source == "" {
		sc.Source = ingest.NewSourceID()
	}
	sc.Source = sc.Source + "-" + suffix
	return sc
}

// runMonitor is one fleet member: jittered start, ticker cadence,
// probe → diff → stream each round, final departures + flush on exit.
func (f *Fleet) runMonitor(ctx context.Context, idx int, phase time.Duration, epoch time.Time, budget chan struct{}) error {
	cfg := f.cfg
	select {
	case <-time.After(phase):
	case <-ctx.Done():
		return nil
	}

	var stream *ingest.StreamClient
	if f.streaming() {
		stream = ingest.NewStreamClient(f.streamCfg(fmt.Sprintf("m%04d", idx)))
	}
	diff := ingest.NewProbeDiff(cfg.SwarmID)
	pc := peer.ProbeConfig{
		DialTimeout:  cfg.DialTimeout,
		BitfieldWait: cfg.BitfieldWait,
		Dial:         cfg.Dial,
		HTTPClient:   cfg.HTTPClient,
		UDP:          cfg.UDP,
		PEX:          cfg.PEX,
		NumWant:      cfg.NumWant,
	}

	emit := func(ops []ingest.Op) error {
		for _, op := range ops {
			f.mRecords.Inc()
			f.mu.Lock()
			f.stats.RecordsEmitted++
			f.mu.Unlock()
			if stream != nil {
				if err := stream.Put(op); err != nil {
					return fmt.Errorf("monitor %d: stream: %w", idx, err)
				}
			}
		}
		return nil
	}

	// A ticker (not Sleep) keeps the cadence independent of probe
	// duration — interval drift was how the old single btmon
	// under-sampled slow swarms.
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()

	var runErr error
	for round := 0; cfg.Rounds <= 0 || round < cfg.Rounds; round++ {
		if round > 0 {
			select {
			case <-ticker.C:
			case <-ctx.Done():
			}
			if ctx.Err() != nil {
				break
			}
		}
		select {
		case budget <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		results, err := peer.Probe(cfg.Torrent, pc)
		<-budget
		f.mProbes.Inc()
		tDays := time.Since(epoch).Seconds() / 86400
		f.mu.Lock()
		f.stats.Rounds++
		f.mu.Unlock()
		if err != nil {
			f.mFailures.Inc()
			f.mu.Lock()
			f.stats.ProbeFailures++
			f.mu.Unlock()
			if cfg.Logf != nil {
				cfg.Logf("monitor %d round %d: announce failed: %v", idx, round, err)
			}
			if cfg.OnRound != nil {
				cfg.OnRound(idx, round, 0)
			}
			continue
		}
		obs := make([]ingest.PeerObservation, 0, len(results))
		sawSeed := false
		for _, r := range results {
			obs = append(obs, ingest.PeerObservation{Key: ingest.ObservationKey(r.Addr), Seed: r.Seed})
			if r.Seed {
				sawSeed = true
			}
		}
		f.mPeers.Add(uint64(len(obs)))
		f.mu.Lock()
		f.stats.PeersObserved += len(obs)
		if sawSeed {
			f.stats.SeedRounds++
		}
		f.mu.Unlock()
		if err := emit(diff.Ops(tDays, obs)); err != nil {
			runErr = err
			break
		}
		if cfg.OnRound != nil {
			cfg.OnRound(idx, round, len(obs))
		}
	}

	// Close the availability intervals and drain the stream, even on
	// cancellation — this is the final-flush guarantee.
	if err := emit(diff.Close(time.Since(epoch).Seconds() / 86400)); err != nil && runErr == nil {
		runErr = err
	}
	if stream != nil {
		if err := stream.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("monitor %d: close stream: %w", idx, err)
		}
		f.mu.Lock()
		f.stats.FramesAcked += stream.Acked()
		f.mu.Unlock()
	}
	return runErr
}

// snapshot copies the tally.
func (f *Fleet) snapshot() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Monitors = f.cfg.Monitors
	return s
}
