package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "download time vs K",
		XLabel: "K",
		YLabel: "E[T] (s)",
		Series: []Series{
			{Name: "1/R=500", X: []float64{1, 2, 3}, Y: []float64{900, 700, 400}},
			{Name: "1/R=100", X: []float64{1, 2, 3}, Y: []float64{300, 500, 650}},
		},
	}
}

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"download time vs K", "1/R=500", "1/R=100", "x: K", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("render too short: %d lines", len(lines))
	}
}

func TestChartRenderLogY(t *testing.T) {
	c := &Chart{
		Series: []Series{{Name: "B", X: []float64{1, 2, 3}, Y: []float64{10, 1000, 100000}}},
		LogY:   true,
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 30, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "log10") {
		t.Fatal("log axis not labelled")
	}
}

func TestChartRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf, 5, 2); err == nil {
		t.Fatal("tiny canvas accepted")
	}
	empty := &Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{math.Inf(1)}}}}
	if err := empty.Render(&buf, 40, 10); err == nil {
		t.Fatal("all-infinite series accepted")
	}
}

func TestChartRenderHandlesInfAndConstant(t *testing.T) {
	c := &Chart{
		Series: []Series{{
			Name: "mixed",
			X:    []float64{1, 2, 3},
			Y:    []float64{5, math.Inf(1), 5},
		}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 30, 6); err != nil {
		t.Fatal(err)
	}
}

func TestChartWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "K,1/R=500,1/R=100" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[1] != "1,900,300" {
		t.Fatalf("row %q", lines[1])
	}
}

func TestChartWriteCSVSparseAndInf(t *testing.T) {
	c := &Chart{
		XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, math.Inf(1)}},
			{Name: "b,q", X: []float64{2}, Y: []float64{20}},
		},
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"b,q"`) {
		t.Fatalf("comma in name not escaped: %s", out)
	}
	if !strings.Contains(out, "inf") {
		t.Fatalf("inf not serialised: %s", out)
	}
	if !strings.Contains(out, "1,10,\n") {
		t.Fatalf("sparse row wrong: %s", out)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := &Timeline{
		Title:   "Figure 5: K=2",
		Horizon: 1200,
		Spans: []Span{
			{Label: "pub", Start: 0, End: 300, Thick: true},
			{Label: "p1", Start: 100, End: 500},
			{Label: "p2", Start: 200, Open: true},
		},
	}
	var buf bytes.Buffer
	if err := tl.Render(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=") {
		t.Fatal("publisher row not thick")
	}
	if !strings.Contains(out, ">") {
		t.Fatal("open span not marked")
	}
	if !strings.Contains(out, "Figure 5") {
		t.Fatal("title missing")
	}
}

func TestTimelineRenderErrors(t *testing.T) {
	var buf bytes.Buffer
	tl := &Timeline{Horizon: 0}
	if err := tl.Render(&buf, 60); err == nil {
		t.Fatal("zero horizon accepted")
	}
	tl = &Timeline{Horizon: 100}
	if err := tl.Render(&buf, 3); err == nil {
		t.Fatal("tiny width accepted")
	}
}

func TestTimelineWriteCSV(t *testing.T) {
	tl := &Timeline{
		Horizon: 100,
		Spans: []Span{
			{Label: "pub", Start: 0, End: 50, Thick: true},
			{Label: "p1", Start: 10, End: math.Inf(1), Open: true},
		},
	}
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pub,0,50,publisher,false") {
		t.Fatalf("publisher row wrong:\n%s", out)
	}
	if !strings.Contains(out, "p1,10,inf,peer,true") {
		t.Fatalf("open peer row wrong:\n%s", out)
	}
}

func TestBoxplotRender(t *testing.T) {
	b := &Boxplot{
		Title:  "Figure 6(c)",
		YLabel: "download time (s)",
		Groups: []BoxGroup{
			{Label: "file1", P5: 100, Q1: 200, Median: 300, Q3: 400, P95: 600, Mean: 320, N: 40},
			{Label: "bundle", P5: 150, Q1: 300, Median: 405, Q3: 500, P95: 700, Mean: 405, N: 160},
		},
	}
	var buf bytes.Buffer
	if err := b.Render(&buf, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "M") || !strings.Contains(out, "=") {
		t.Fatalf("boxplot glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "median 405") {
		t.Fatalf("stats missing:\n%s", out)
	}
}

func TestBoxplotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Boxplot{}).Render(&buf, 50); err == nil {
		t.Fatal("empty boxplot accepted")
	}
	b := &Boxplot{Groups: []BoxGroup{{Label: "x"}}}
	if err := b.Render(&buf, 5); err == nil {
		t.Fatal("tiny width accepted")
	}
	// Degenerate all-equal group still renders.
	b = &Boxplot{Groups: []BoxGroup{{Label: "x", P5: 5, Q1: 5, Median: 5, Q3: 5, P95: 5}}}
	if err := b.Render(&buf, 40); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplotWriteCSV(t *testing.T) {
	b := &Boxplot{Groups: []BoxGroup{
		{Label: "g1", P5: 1, Q1: 2, Median: 3, Q3: 4, P95: 5, Mean: 3.1, N: 7},
	}}
	var buf bytes.Buffer
	if err := b.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "label,p5,q1,median,q3,p95,mean,n\ng1,1,2,3,4,5,3.1,7\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestSortSpansByStart(t *testing.T) {
	spans := []Span{{Label: "b", Start: 5}, {Label: "a", Start: 1}, {Label: "c", Start: 3}}
	SortSpansByStart(spans)
	if spans[0].Label != "a" || spans[1].Label != "c" || spans[2].Label != "b" {
		t.Fatalf("sort wrong: %+v", spans)
	}
}
