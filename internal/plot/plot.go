// Package plot renders the repository's figures as ASCII charts for the
// terminal and as CSV series for external plotting. It supports the
// figure types the paper uses: line charts (Figures 3, 4, 6a/6b), CDFs
// (Figure 1), event timelines (Figures 2 and 5), boxplots (Figure 6c),
// and bar series (Figure 7).
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a set of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots the y axis in log10 space (busy periods span decades).
	LogY bool
}

// seriesGlyphs mark successive series on the canvas.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '$'}

// Render draws the chart as ASCII art of the given size (columns×rows of
// plotting area, excluding axes).
func (c *Chart) Render(w io.Writer, width, height int) error {
	if width < 10 || height < 4 {
		return fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsInf(y, 0) || math.IsNaN(y) || math.IsInf(s.X[i], 0) {
				continue
			}
			any = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if !any {
		return fmt.Errorf("plot: no finite points to draw")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = glyph
			}
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	yl, yh := ymin, ymax
	unit := ""
	if c.LogY {
		unit = " (log10)"
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", yh)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", yl)
		case height / 2:
			label = fmt.Sprintf("%9.3g ", (yl+yh)/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-*.4g%*.4g\n", strings.Repeat(" ", 11), width/2, xmin, width-width/2, xmax)
	if c.XLabel != "" || c.YLabel != "" || unit != "" {
		fmt.Fprintf(w, "           x: %s, y: %s%s\n", c.XLabel, c.YLabel, unit)
	}
	for si, s := range c.Series {
		fmt.Fprintf(w, "           %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return nil
}

// WriteCSV emits the chart as CSV: one x column per shared axis plus one
// column per series (rows are the union of x values; missing points are
// empty).
func (c *Chart) WriteCSV(w io.Writer) error {
	// Collect the union of x values.
	xset := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	cols := make([]string, 0, len(c.Series)+1)
	cols = append(cols, csvEscape(c.XLabel))
	for _, s := range c.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range xs {
		row := []string{formatFloat(x)}
		for _, s := range c.Series {
			val := ""
			for i := range s.X {
				if s.X[i] == x {
					val = formatFloat(s.Y[i])
					break
				}
			}
			row = append(row, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%g", v)
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
