package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Span is one horizontal segment on a timeline: an entity (peer or
// publisher) present from Start to End. The renderer draws Figure 2 and
// Figure 5 style charts: one row per entity, time on the x axis.
type Span struct {
	Label string
	Start float64
	End   float64
	// Thick marks publisher rows (drawn with '=' instead of '-').
	Thick bool
	// Open marks spans that had not terminated by the horizon.
	Open bool
}

// Timeline is a set of spans over [0, Horizon].
type Timeline struct {
	Title   string
	Horizon float64
	Spans   []Span
}

// Render draws the timeline with the given plot width. Rows appear in
// span order (callers sort by arrival time for Figure 5).
func (tl *Timeline) Render(w io.Writer, width int) error {
	if width < 10 {
		return fmt.Errorf("plot: timeline width %d too small", width)
	}
	if tl.Horizon <= 0 {
		return fmt.Errorf("plot: timeline horizon must be positive")
	}
	if tl.Title != "" {
		fmt.Fprintf(w, "%s\n", tl.Title)
	}
	maxLabel := 0
	for _, s := range tl.Spans {
		if len(s.Label) > maxLabel {
			maxLabel = len(s.Label)
		}
	}
	scale := func(t float64) int {
		c := int(t / tl.Horizon * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, s := range tl.Spans {
		row := []byte(strings.Repeat(" ", width))
		lo := scale(s.Start)
		end := s.End
		if s.Open || math.IsInf(end, 1) {
			end = tl.Horizon
		}
		hi := scale(end)
		mark := byte('-')
		if s.Thick {
			mark = '='
		}
		for c := lo; c <= hi; c++ {
			row[c] = mark
		}
		row[lo] = '|'
		if !s.Open && !math.IsInf(s.End, 1) {
			row[hi] = '|'
		} else {
			row[hi] = '>'
		}
		fmt.Fprintf(w, "%-*s %s\n", maxLabel, s.Label, string(row))
	}
	fmt.Fprintf(w, "%s 0%s%.4g s\n", strings.Repeat(" ", maxLabel),
		strings.Repeat(" ", width-8), tl.Horizon)
	return nil
}

// WriteCSV emits the spans as CSV rows (label, start, end, kind, open).
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,start,end,kind,open"); err != nil {
		return err
	}
	for _, s := range tl.Spans {
		kind := "peer"
		if s.Thick {
			kind = "publisher"
		}
		end := formatFloat(s.End)
		if _, err := fmt.Fprintf(w, "%s,%g,%s,%s,%v\n",
			csvEscape(s.Label), s.Start, end, kind, s.Open); err != nil {
			return err
		}
	}
	return nil
}

// Boxplot renders Figure 6(c)-style distribution summaries: one row per
// group showing 5th percentile, quartiles, median and 95th percentile.
type Boxplot struct {
	Title  string
	YLabel string
	Groups []BoxGroup
}

// BoxGroup is one labelled distribution.
type BoxGroup struct {
	Label                   string
	P5, Q1, Median, Q3, P95 float64
	Mean                    float64
	N                       int
}

// Render draws the boxplot horizontally with the given width.
func (b *Boxplot) Render(w io.Writer, width int) error {
	if width < 20 {
		return fmt.Errorf("plot: boxplot width %d too small", width)
	}
	if len(b.Groups) == 0 {
		return fmt.Errorf("plot: no groups")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range b.Groups {
		lo = math.Min(lo, g.P5)
		hi = math.Max(hi, g.P95)
	}
	if hi == lo {
		hi = lo + 1
	}
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n", b.Title)
	}
	maxLabel := 0
	for _, g := range b.Groups {
		if len(g.Label) > maxLabel {
			maxLabel = len(g.Label)
		}
	}
	scale := func(v float64) int {
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, g := range b.Groups {
		row := []byte(strings.Repeat(" ", width))
		for c := scale(g.P5); c <= scale(g.P95); c++ {
			row[c] = '-'
		}
		for c := scale(g.Q1); c <= scale(g.Q3); c++ {
			row[c] = '='
		}
		row[scale(g.P5)] = '|'
		row[scale(g.P95)] = '|'
		row[scale(g.Median)] = 'M'
		fmt.Fprintf(w, "%-*s %s  (median %.4g, mean %.4g, n=%d)\n",
			maxLabel, g.Label, string(row), g.Median, g.Mean, g.N)
	}
	fmt.Fprintf(w, "%s %.4g%s%.4g  %s\n", strings.Repeat(" ", maxLabel), lo,
		strings.Repeat(" ", max(1, width-12)), hi, b.YLabel)
	return nil
}

// WriteCSV emits the boxplot groups as CSV.
func (b *Boxplot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,p5,q1,median,q3,p95,mean,n"); err != nil {
		return err
	}
	for _, g := range b.Groups {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g,%g,%d\n",
			csvEscape(g.Label), g.P5, g.Q1, g.Median, g.Q3, g.P95, g.Mean, g.N); err != nil {
			return err
		}
	}
	return nil
}

// SortSpansByStart orders spans by start time (stable), the conventional
// Figure 5 presentation.
func SortSpansByStart(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
}
