package swarmavail

// Public facade over the runnable BitTorrent stack: torrents (including
// multi-file bundles), the HTTP tracker, live peers, and the §2-style
// monitoring probe. See examples/livetorrent for an end-to-end swarm on
// localhost.

import (
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/bittorrent/tracker"
)

// Torrent metainfo types.
type (
	// Torrent is a parsed .torrent (announce URL + info dictionary).
	Torrent = metainfo.Torrent
	// TorrentInfo is the info dictionary: name, piece hashes, files.
	TorrentInfo = metainfo.Info
	// TorrentFile is one file inside a torrent's content; two or more
	// make a bundle.
	TorrentFile = metainfo.File
	// InfoHash identifies a torrent (SHA-1 of the canonical info dict).
	InfoHash = metainfo.InfoHash
)

// NewTorrentInfo builds an info dictionary over content bytes, hashing
// pieces of the given length. files must partition the content.
func NewTorrentInfo(name string, pieceLength int64, files []TorrentFile, content []byte) (*TorrentInfo, error) {
	return metainfo.New(name, pieceLength, files, content)
}

// UnmarshalTorrent parses .torrent bytes.
func UnmarshalTorrent(data []byte) (*Torrent, error) { return metainfo.Unmarshal(data) }

// Tracker types and constructor.
type (
	// TrackerServer is an HTTP BitTorrent tracker (announce + scrape).
	TrackerServer = tracker.Server
	// AnnounceRequest/AnnounceResponse are the client-side announce API.
	AnnounceRequest  = tracker.AnnounceRequest
	AnnounceResponse = tracker.AnnounceResponse
)

// NewTracker returns an HTTP tracker; mount Handler or call Serve.
func NewTracker() *TrackerServer { return tracker.NewServer() }

// Peer node types.
type (
	// PeerConfig configures a live seeder or leecher.
	PeerConfig = peer.Config
	// PeerNode is a running BitTorrent peer.
	PeerNode = peer.Node
	// ProbeResult is one peer observed by the monitoring agent.
	ProbeResult = peer.ProbeResult
)

// NewPeer creates a peer node for the torrent (seed by supplying the
// content, leech by omitting it). Call Start to join the swarm.
func NewPeer(cfg PeerConfig) (*PeerNode, error) { return peer.New(cfg) }

// Probe joins a swarm's control plane, records the bitfields peers
// advertise and classifies seeds — the paper's §2 monitoring agent.
// The timeout bounds both the per-peer dial and its I/O deadline
// (peer.DefaultDialTimeout if 0).
func Probe(t *Torrent, timeout time.Duration) ([]ProbeResult, error) {
	return peer.Probe(t, peer.ProbeConfig{DialTimeout: timeout})
}
