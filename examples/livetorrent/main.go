// Livetorrent: an end-to-end swarm over real TCP on localhost — the
// repository's miniature of the paper's PlanetLab deployment. The
// program starts a tracker, publishes a two-file bundle, runs an
// intermittently available publisher (seeder) and a trickle of leechers,
// and reports each leecher's download time together with a §2-style
// monitoring probe of seed availability.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/bittorrent/tracker"
)

func main() {
	// 1. Tracker.
	srv := tracker.NewServer()
	ln, closeTracker, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer closeTracker()
	announce := "http://" + ln.Addr().String() + "/announce"
	fmt.Println("tracker:", announce)

	// 2. A bundled torrent: two 96 KB "episodes" in one swarm.
	content := make([]byte, 192*1024)
	rand.New(rand.NewSource(1)).Read(content)
	info, err := metainfo.New("season-pack", 16*1024, []metainfo.File{
		{Path: "ep1.avi", Length: 96 * 1024},
		{Path: "ep2.avi", Length: 96 * 1024},
	}, content)
	if err != nil {
		log.Fatal(err)
	}
	tor := &metainfo.Torrent{Announce: announce, Info: *info}
	fmt.Printf("torrent: %q, %d pieces, bundle=%v\n",
		tor.Info.Name, tor.Info.NumPieces(), tor.Info.IsBundle())

	newNode := func(seedContent []byte) *peer.Node {
		n, err := peer.New(peer.Config{
			Torrent:          tor,
			Content:          seedContent,
			AnnounceInterval: 300 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := n.Start(); err != nil {
			log.Fatal(err)
		}
		return n
	}

	// 3. Publisher with downtime: online 3 s, offline 2 s, twice.
	publisher := newNode(content)
	fmt.Println("publisher online at", publisher.Addr())

	// 4. Leechers arrive while the publisher flaps.
	type arrival struct {
		node  *peer.Node
		start time.Time
	}
	var leechers []arrival
	addLeecher := func() {
		l := arrival{node: newNode(nil), start: time.Now()}
		leechers = append(leechers, l)
		fmt.Printf("leecher %d arrived (%s)\n", len(leechers), l.node.Addr())
	}

	addLeecher()
	addLeecher()
	time.Sleep(1500 * time.Millisecond)

	probe(tor)

	fmt.Println("publisher goes offline…")
	publisher.Stop()
	addLeecher() // arrives during downtime; completes via extant peers or waits
	time.Sleep(2 * time.Second)

	fmt.Println("publisher returns…")
	publisher2 := newNode(content)
	defer publisher2.Stop()

	// 5. Wait for every leecher and report download times.
	for i, l := range leechers {
		select {
		case <-l.node.Done():
		case <-time.After(30 * time.Second):
			have, total := l.node.Progress()
			log.Fatalf("leecher %d stuck at %d/%d pieces", i+1, have, total)
		}
		if !bytes.Equal(l.node.Bytes(), content) {
			log.Fatalf("leecher %d downloaded corrupt content", i+1)
		}
		fmt.Printf("leecher %d finished in %v (content verified)\n",
			i+1, time.Since(l.start).Round(10*time.Millisecond))
	}
	probe(tor)
	for _, l := range leechers {
		l.node.Stop()
	}
	fmt.Println("swarm complete: every leecher verified the full bundle.")
}

// probe runs the monitoring agent once and prints what it saw.
func probe(tor *metainfo.Torrent) {
	results, err := peer.Probe(tor, peer.ProbeConfig{DialTimeout: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	seeds := 0
	for _, r := range results {
		if r.Seed {
			seeds++
		}
	}
	fmt.Printf("monitor probe: %d peers visible, %d seeds\n", len(results), seeds)
}
