// Intermittent-publisher example: reproduce one point of Figure 6(a) —
// the download-time-vs-bundle-size tradeoff under a publisher that
// alternates 300 s on / 900 s off — and compare the block-level
// simulation against the eq. (16) model prediction for every K.
package main

import (
	"fmt"
	"log"

	"swarmavail"
	"swarmavail/internal/dist"
	"swarmavail/internal/stats"
)

func main() {
	model := swarmavail.SwarmParams{
		Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300,
	}
	const (
		m    = 9 // coverage threshold validated in §4.3.1
		runs = 3
	)
	fmt.Println("K   simulated E[T]    model E[T] (eq.16)   sim completions")
	bestK, bestT := 0, 0.0
	for k := 1; k <= 8; k++ {
		var acc stats.Accumulator
		for run := 0; run < runs; run++ {
			files := make([]swarmavail.FileSpec, k)
			for i := range files {
				files[i] = swarmavail.FileSpec{SizeKB: 4000, Lambda: 1.0 / 60}
			}
			res, err := swarmavail.Simulate(swarmavail.SimConfig{
				Seed:                int64(100*k + run),
				Files:               files,
				PeerUpload:          dist.Deterministic{Value: 50},
				PublisherUploadKBps: 100,
				PublisherMode:       swarmavail.PublisherOnOff,
				PublisherOn:         dist.NewExponentialFromMean(300),
				PublisherOff:        dist.NewExponentialFromMean(900),
				DepartureLagSeconds: 15,
				ArrivalCutoff:       1200,
				Horizon:             15000,
			})
			if err != nil {
				log.Fatal(err)
			}
			acc.AddAll(res.DownloadTimes())
		}
		predicted := model.Bundle(k, swarmavail.ConstantPublisher).SinglePublisherDownloadTime(m)
		fmt.Printf("%-3d %8.0f ± %-6.0f %12.0f %16d\n",
			k, acc.Mean(), acc.CI95(), predicted, acc.N())
		if bestK == 0 || acc.Mean() < bestT {
			bestK, bestT = k, acc.Mean()
		}
	}
	fmt.Printf("\nsimulated optimum: K=%d (paper experiment: K=4, paper model: K=5)\n", bestK)
	fmt.Println("the model captures the U shape: waiting dominates small K, service")
	fmt.Println("time dominates large K, and the optimum bridges publisher downtime.")
}
