// Measurement example: reproduce the paper's §2 story through the public
// API — generate a measurement campaign, compute Figure 1's headline
// numbers, and show the bundling/availability correlation that motivates
// the whole model.
package main

import (
	"fmt"
	"math"

	"swarmavail"
	"swarmavail/internal/measure"
	"swarmavail/internal/trace"
)

func main() {
	// Seven synthetic months of monitoring 10,000 swarms.
	traces := swarmavail.GenerateStudy(swarmavail.DefaultStudyConfig(10000, 2026))
	h := swarmavail.Headlines(traces)
	fmt.Println("== availability study (Figure 1) ==")
	fmt.Printf("monitored swarms:                 %d\n", h.Swarms)
	fmt.Printf("fully seeded through first month: %.1f%%\n", 100*h.FullyAvailableFirstMonth)
	fmt.Printf("≤20%% available over whole trace:  %.1f%%\n", 100*h.MostlyUnavailableOverall)
	fmt.Println("→ \"half of the swarms are unavailable half of the time\"")

	// A single-day census of 100,000 swarms, classified like §2.3.
	snaps := swarmavail.GenerateSnapshot(swarmavail.SnapshotConfig{Seed: 2027, NumSwarms: 100000})
	fmt.Println("\n== census (§2.3) ==")
	ext := measure.ExtentOfBundling(snaps)
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		e := ext[cat]
		fmt.Printf("%-6s: %6d swarms, %5.1f%% bundles\n",
			cat, e.Swarms, 100*e.BundleFraction())
	}
	cmp := measure.CompareAvailability(snaps, trace.Books)
	fmt.Printf("\nbook swarms with no seed:  %.0f%% overall, %.0f%% of bundles\n",
		100*cmp.SeedlessAll, 100*cmp.SeedlessBundles)
	fmt.Printf("mean downloads:            %.0f overall, %.0f for bundles\n",
		cmp.MeanDownloadsAll, cmp.MeanDownloadsBundles)

	// Close the loop with the model: the census correlation is what the
	// availability theorem predicts causally.
	fmt.Println("\n== what the model says about it ==")
	single := swarmavail.SwarmParams{Lambda: 1.0 / 300, Size: 2000, Mu: 50, R: 1.0 / 3600, U: 600}
	bundle := single.Bundle(8, swarmavail.ScaledPublisher)
	fmt.Printf("a niche book alone:        P(unavailable) = %.2f\n", single.Unavailability())
	fmt.Printf("inside an 8-book pack:     P(unavailable) = %.2g\n", bundle.Unavailability())
	fmt.Printf("availability gain factor:  e^%.1f (Theorem 3.1: e^Θ(K²))\n",
		-1*(logOr(bundle.Unavailability())-logOr(single.Unavailability())))
}

// logOr guards log(0) for the saturated fully-available case.
func logOr(p float64) float64 {
	if p <= 0 {
		return -745 // ln of the smallest positive float64
	}
	return math.Log(p)
}
