// Bundling-decision example: a publisher curates a catalog of files with
// very different popularities (the §3.4/§4.3.3 scenario) and wants to
// know how to package them. The program evaluates three strategies with
// the availability model — everything solo, one big bundle, or bundling
// only the unpopular tail — and reports per-file download times under
// each.
package main

import (
	"fmt"

	"swarmavail"
)

// title pairs a catalog entry with a human label.
type title struct {
	name  string
	swarm swarmavail.SwarmParams
}

func main() {
	// The catalog: one hit and a long tail, all 4 MB files behind the
	// same intermittently available publisher (r = 1/2000 s⁻¹, u = 300 s:
	// a publisher that is absent most of the time).
	mk := func(lambda float64) swarmavail.SwarmParams {
		return swarmavail.SwarmParams{Lambda: lambda, Size: 4000, Mu: 50, R: 1.0 / 2000, U: 300}
	}
	catalog := []title{
		{"blockbuster", mk(1.0 / 10)},
		{"cult-classic", mk(1.0 / 120)},
		{"deep-cut-1", mk(1.0 / 400)},
		{"deep-cut-2", mk(1.0 / 600)},
		{"archive-gem", mk(1.0 / 900)},
	}

	fmt.Println("strategy 1: every title in its own swarm")
	soloTimes := map[string]float64{}
	for _, t := range catalog {
		et := t.swarm.DownloadTime()
		soloTimes[t.name] = et
		fmt.Printf("  %-14s λ=1/%-4.0f  P=%.3f  E[T]=%7.0f s\n",
			t.name, 1/t.swarm.Lambda, t.swarm.Unavailability(), et)
	}

	fmt.Println("\nstrategy 2: one bundle with everything")
	all := make([]swarmavail.SwarmParams, len(catalog))
	for i, t := range catalog {
		all[i] = t.swarm
	}
	// The publisher now maintains a single seed with the same process.
	full := swarmavail.BundleOf(all, all[0].R, all[0].U)
	fullT := full.DownloadTime()
	fmt.Printf("  bundle of %d: size %.0f KB, P=%.2g, E[T]=%.0f s for every requester\n",
		len(all), full.Size, full.Unavailability(), fullT)

	fmt.Println("\nstrategy 3: hit stays solo, tail bundled")
	tail := all[1:]
	tailBundle := swarmavail.BundleOf(tail, all[0].R, all[0].U)
	tailT := tailBundle.DownloadTime()
	fmt.Printf("  %-14s solo: E[T]=%7.0f s\n", catalog[0].name, soloTimes[catalog[0].name])
	fmt.Printf("  tail bundle of %d: P=%.2g, E[T]=%7.0f s\n",
		len(tail), tailBundle.Unavailability(), tailT)

	fmt.Println("\nper-title verdict (download time in s):")
	fmt.Printf("  %-14s %10s %10s %10s\n", "title", "solo", "all-in-one", "tail-bundle")
	for i, t := range catalog {
		strat3 := tailT
		if i == 0 {
			strat3 = soloTimes[t.name]
		}
		fmt.Printf("  %-14s %10.0f %10.0f %10.0f\n",
			t.name, soloTimes[t.name], fullT, strat3)
	}
	fmt.Println("\nreading: bundling rescues the tail (availability dominates their")
	fmt.Println("solo download times) at a modest cost to blockbuster fans — the")
	fmt.Println("paper's mixed-bundling conclusion (§4.3.3).")
}
