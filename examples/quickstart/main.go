// Quickstart: ask the availability model the paper's two headline
// questions about a swarm — how available is the content, and does
// bundling help? — then cross-check the answer with one simulator run.
package main

import (
	"fmt"
	"log"

	"swarmavail"
	"swarmavail/internal/dist"
)

func main() {
	// A 4 MB episode of a niche show: one peer per minute, a publisher
	// that shows up every 15 minutes and stays for 5.
	episode := swarmavail.SwarmParams{
		Lambda: 1.0 / 60,  // peers/s
		Size:   4000,      // KB
		Mu:     50,        // KB/s effective capacity
		R:      1.0 / 900, // publisher arrivals/s
		U:      300,       // publisher stays 300 s
	}

	fmt.Println("== single swarm ==")
	fmt.Printf("offered load ρ:            %.2f concurrent peers\n", episode.Rho())
	fmt.Printf("busy period E[B]:          %.0f s\n", episode.BusyPeriod())
	fmt.Printf("unavailability P:          %.2f\n", episode.Unavailability())
	fmt.Printf("mean download time E[T]:   %.0f s (%.0f s of it waiting)\n",
		episode.DownloadTime(), episode.DownloadTime()-episode.ServiceTime())

	// Bundle a whole season: demand and size aggregate; one publisher
	// process per episode folds in (R=Kr, U=Ku).
	fmt.Println("\n== bundling the season ==")
	bestK, curve := episode.OptimalBundleSize(10, swarmavail.ScaledPublisher)
	for k := 1; k <= 10; k++ {
		marker := "  "
		if k == bestK {
			marker = "→ "
		}
		fmt.Printf("%sK=%-2d  E[T]=%7.0f s   P=%.2g\n", marker, k, curve[k-1],
			episode.Bundle(k, swarmavail.ScaledPublisher).Unavailability())
	}
	fmt.Printf("bundling %d episodes gets peers MORE content in LESS time.\n", bestK)

	// Cross-check the bundle with the block-level simulator.
	fmt.Println("\n== simulator cross-check ==")
	files := make([]swarmavail.FileSpec, bestK)
	for i := range files {
		files[i] = swarmavail.FileSpec{SizeKB: 4000, Lambda: 1.0 / 60}
	}
	res, err := swarmavail.Simulate(swarmavail.SimConfig{
		Seed:                7,
		Files:               files,
		PeerUpload:          dist.Deterministic{Value: 50},
		PublisherUploadKBps: 100,
		PublisherMode:       swarmavail.PublisherOnOff,
		PublisherOn:         dist.NewExponentialFromMean(300),
		PublisherOff:        dist.NewExponentialFromMean(900),
		DepartureLagSeconds: 15,
		ArrivalCutoff:       2400,
		Horizon:             14400,
	})
	if err != nil {
		log.Fatal(err)
	}
	times := res.DownloadTimes()
	var sum float64
	for _, t := range times {
		sum += t
	}
	fmt.Printf("simulated %d downloads of the K=%d bundle: mean %.0f s\n",
		len(times), bestK, sum/float64(len(times)))
	// The simulated publisher is a single on/off seed regardless of K, so
	// the matching model prediction is the §4.3.1 adaptation (eq. 16)
	// with a constant publisher process and coverage threshold m = 9.
	predicted := episode.Bundle(bestK, swarmavail.ConstantPublisher).SinglePublisherDownloadTime(9)
	fmt.Printf("eq. (16) model prediction for the same setting: %.0f s\n", predicted)
	fmt.Printf("content availability in the run: %.2f (publisher alone: %.2f)\n",
		res.AvailabilityFraction(), res.PublisherAvailabilityFraction())
}
