package swarmavail

import (
	"math"
	"testing"

	"swarmavail/internal/dist"
)

func TestFacadeModelRoundTrip(t *testing.T) {
	p := SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	if p.ServiceTime() != 80 {
		t.Fatalf("service time %v", p.ServiceTime())
	}
	u := p.Unavailability()
	if u <= 0 || u >= 1 {
		t.Fatalf("unavailability %v", u)
	}
	k, curve := p.OptimalBundleSize(8, ScaledPublisher)
	if k < 1 || k > 8 || len(curve) != 8 {
		t.Fatalf("optimum %d curve %v", k, curve)
	}
	if got := BusyPeriodExceptional(0, 300, 80, 300, 0.5); got != 300 {
		t.Fatalf("facade busy period %v", got)
	}
	b := BundleOf([]SwarmParams{p, p}, p.R, p.U)
	if b.Lambda != 2*p.Lambda || b.Size != 2*p.Size {
		t.Fatalf("facade bundle %+v", b)
	}
}

func TestFacadeSimulate(t *testing.T) {
	res, err := Simulate(SimConfig{
		Seed:                5,
		Files:               []FileSpec{{SizeKB: 4000, Lambda: 1.0 / 120}},
		PeerUpload:          dist.Deterministic{Value: 50},
		PublisherUploadKBps: 100,
		PublisherMode:       PublisherAlwaysOn,
		Horizon:             2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvailabilityFraction() != 1 {
		t.Fatalf("always-on availability %v", res.AvailabilityFraction())
	}
	if res.CompletedCount() == 0 {
		t.Fatal("no downloads completed")
	}
}

func TestFacadeMeasurement(t *testing.T) {
	traces := GenerateStudy(DefaultStudyConfig(500, 9))
	h := Headlines(traces)
	if h.Swarms != 500 {
		t.Fatalf("headline swarms %d", h.Swarms)
	}
	if h.FullyAvailableFirstMonth <= 0 || h.FullyAvailableFirstMonth >= 1 {
		t.Fatalf("headline fraction %v", h.FullyAvailableFirstMonth)
	}
	snaps := GenerateSnapshot(SnapshotConfig{Seed: 9, NumSwarms: 300})
	if len(snaps) != 300 {
		t.Fatalf("snapshot size %d", len(snaps))
	}
}

func TestFacadeFluid(t *testing.T) {
	f := FluidFromSwarm(1.0/60, 4000, 50, 400, 0, 1)
	if got := f.DownloadTime(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("fluid download time %v", got)
	}
}
