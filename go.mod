module swarmavail

go 1.22
