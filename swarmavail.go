// Package swarmavail is a library for reasoning about content
// availability and bundling in swarming (BitTorrent-like) systems. It
// implements the model and testbed of Menasché, Rocha, Li, Towsley and
// Venkataramani, "Content Availability and Bundling in Swarming
// Systems" (CoNEXT 2009):
//
//   - the M/G/∞ availability model: busy periods with exceptional first
//     customers, unavailability and download-time formulas, threshold
//     coverage, altruistic lingering, and the e^{Θ(K²)} bundling laws
//     (types aliased from the model engine, e.g. SwarmParams);
//   - a deterministic block-level swarm simulator reproducing the
//     paper's PlanetLab experiments (Simulate);
//   - a synthetic measurement substrate and its analysis, reproducing
//     the paper's seven-month availability study and bundling census
//     (GenerateStudy, GenerateSnapshot, Headlines, …);
//   - a runnable mini-BitTorrent (tracker, wire protocol, peers) for
//     end-to-end localhost swarms (see internal/bittorrent and the
//     examples).
//
// # Quick start
//
// Describe a swarm by its Table-1 parameters and ask the model
// questions:
//
//	p := swarmavail.SwarmParams{
//	    Lambda: 1.0 / 60, // one peer per minute
//	    Size:   4000,     // 4 MB in KB
//	    Mu:     50,       // 50 KB/s effective capacity
//	    R:      1.0 / 900, // publisher returns every 15 min
//	    U:      300,      // and stays 5 min
//	}
//	fmt.Println(p.Unavailability(), p.DownloadTime())
//	k, curve := p.OptimalBundleSize(10, swarmavail.ScaledPublisher)
//
// See the examples directory for complete programs, and DESIGN.md /
// EXPERIMENTS.md for the paper-reproduction map.
package swarmavail

import (
	"swarmavail/internal/core"
	"swarmavail/internal/fluid"
	"swarmavail/internal/measure"
	"swarmavail/internal/swarm"
	"swarmavail/internal/trace"
)

// Model types (Table 1 of the paper and §3's machinery).
type (
	// SwarmParams describes a swarm or bundle: peer arrival rate λ,
	// content size s, effective capacity μ, publisher arrival rate r and
	// mean publisher residence u.
	SwarmParams = core.SwarmParams
	// PublisherScaling selects how a bundle's publisher process relates
	// to its constituents' (R=Kr,U=Ku vs constant).
	PublisherScaling = core.PublisherScaling
	// Lingering extends SwarmParams with altruistic seeding after
	// completion (§3.3.4).
	Lingering = core.Lingering
)

// Publisher scaling modes.
const (
	// ScaledPublisher folds one publisher process per constituent file
	// into the bundle: R = K·r, U = K·u.
	ScaledPublisher = core.ScaledPublisher
	// ConstantPublisher keeps the bundle's publisher process equal to a
	// single file's — the harder case of Theorems 3.1/3.2.
	ConstantPublisher = core.ConstantPublisher
)

// BusyPeriodExceptional evaluates the Browne–Steele expected busy period
// (paper eq. 9); see SwarmParams.BusyPeriod for the swarm
// parameterisation.
func BusyPeriodExceptional(beta, theta, alpha1, alpha2, q1 float64) float64 {
	return core.BusyPeriodExceptional(beta, theta, alpha1, alpha2, q1)
}

// BundleOf aggregates heterogeneous swarms into one bundle with the
// given publisher process.
func BundleOf(swarms []SwarmParams, r, u float64) SwarmParams {
	return core.BundleOf(swarms, r, u)
}

// PlanBundle is the evaluated bundling plan for a catalog (solo vs
// bundled download times and the bundle's unavailability).
type PlanBundle = core.PlanBundle

// EvaluateBundle builds the bundling plan for the given swarms sharing
// one publisher process.
func EvaluateBundle(swarms []SwarmParams, r, u float64) PlanBundle {
	return core.EvaluateBundle(swarms, r, u)
}

// ZipfBundle builds the §3.3.1 skewed-preference scenario: K contents
// sharing aggregate demand lambda with Zipf(delta) popularity, plus
// their bundle.
func ZipfBundle(k int, lambda, delta, size, mu, r, u, bundleR, bundleU float64) ([]SwarmParams, SwarmParams) {
	return core.ZipfBundle(k, lambda, delta, size, mu, r, u, bundleR, bundleU)
}

// ErrUnachievable is returned by the planning helpers
// (SwarmParams.RequiredBundleSize, RequiredPublisherRate,
// RequiredLingering) when no setting in the searched range meets the
// availability target.
var ErrUnachievable = core.ErrUnachievable

// Simulator types: the block-level testbed of §4.
type (
	// SimConfig configures one simulated swarm (files, capacities,
	// publisher behaviour, arrivals, horizon).
	SimConfig = swarm.Config
	// SimResult carries per-peer records, publisher sessions and
	// availability intervals.
	SimResult = swarm.Result
	// FileSpec is one file carried by a simulated torrent.
	FileSpec = swarm.FileSpec
	// PeerRecord is one simulated peer's lifecycle.
	PeerRecord = swarm.PeerRecord
)

// Publisher behaviour modes for the simulator.
const (
	// PublisherAlwaysOn keeps the publisher online for the whole run.
	PublisherAlwaysOn = swarm.PublisherAlwaysOn
	// PublisherOnOff alternates exponential on/off sojourns.
	PublisherOnOff = swarm.PublisherOnOff
	// PublisherUntilFirstCompletion serves the first copy, then leaves
	// for good (the §4.2 seedless experiment).
	PublisherUntilFirstCompletion = swarm.PublisherUntilFirstCompletion
)

// Simulate runs the block-level swarm simulator; it is deterministic in
// cfg.Seed.
func Simulate(cfg SimConfig) (*SimResult, error) { return swarm.Run(cfg) }

// Measurement types: the synthetic §2 datasets and their analysis.
type (
	// StudyConfig parameterises the seven-month availability study.
	StudyConfig = trace.StudyConfig
	// SwarmTrace is one swarm's seed-session record.
	SwarmTrace = trace.SwarmTrace
	// SnapshotConfig parameterises the single-day census.
	SnapshotConfig = trace.SnapshotConfig
	// Snapshot is one swarm's census row.
	Snapshot = trace.Snapshot
	// StudyHeadlines carries Figure 1's headline statistics.
	StudyHeadlines = measure.StudyHeadlines
)

// DefaultStudyConfig returns the calibrated availability-study
// configuration.
func DefaultStudyConfig(numSwarms int, seed int64) StudyConfig {
	return trace.DefaultStudyConfig(numSwarms, seed)
}

// GenerateStudy produces a synthetic availability study.
func GenerateStudy(cfg StudyConfig) []SwarmTrace { return trace.GenerateStudy(cfg) }

// GenerateSnapshot produces a synthetic single-day census.
func GenerateSnapshot(cfg SnapshotConfig) []Snapshot { return trace.GenerateSnapshot(cfg) }

// Headlines computes the Figure 1 headline statistics from a study.
func Headlines(traces []SwarmTrace) StudyHeadlines { return measure.Headlines(traces) }

// FluidParams is the Qiu–Srikant fluid baseline (§5's comparator).
type FluidParams = fluid.Params

// FluidFromSwarm builds fluid parameters from byte-level quantities.
func FluidFromSwarm(lambda, sizeUnits, upload, download, seedTime, eta float64) FluidParams {
	return fluid.FromSwarm(lambda, sizeUnits, upload, download, seedTime, eta)
}
