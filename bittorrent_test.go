package swarmavail_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"swarmavail"
)

// TestBitTorrentFacadeEndToEnd drives a complete swarm purely through
// the public API: tracker, bundle torrent, seeder, leecher, monitor.
func TestBitTorrentFacadeEndToEnd(t *testing.T) {
	srv := swarmavail.NewTracker()
	ln, closeFn, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()

	content := make([]byte, 48*1024)
	rand.New(rand.NewSource(3)).Read(content)
	info, err := swarmavail.NewTorrentInfo("pack", 4096, []swarmavail.TorrentFile{
		{Path: "a.mp3", Length: 20 * 1024},
		{Path: "b.mp3", Length: 28 * 1024},
	}, content)
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsBundle() {
		t.Fatal("expected a bundle")
	}
	tor := &swarmavail.Torrent{
		Announce: "http://" + ln.Addr().String() + "/announce",
		Info:     *info,
	}

	// Round-trip the torrent file itself.
	raw, err := tor.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := swarmavail.UnmarshalTorrent(raw)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := tor.Info.Hash()
	h2, _ := back.Info.Hash()
	if h1 != h2 {
		t.Fatal("infohash changed across marshal round trip")
	}

	seeder, err := swarmavail.NewPeer(swarmavail.PeerConfig{
		Torrent: tor, Content: content, AnnounceInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.Start(); err != nil {
		t.Fatal(err)
	}
	defer seeder.Stop()

	leecher, err := swarmavail.NewPeer(swarmavail.PeerConfig{
		Torrent: tor, AnnounceInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leecher.Start(); err != nil {
		t.Fatal(err)
	}
	defer leecher.Stop()

	select {
	case <-leecher.Done():
	case <-time.After(20 * time.Second):
		t.Fatal("download did not complete")
	}
	if !bytes.Equal(leecher.Bytes(), content) {
		t.Fatal("content mismatch")
	}

	results, err := swarmavail.Probe(tor, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seeds := 0
	for _, r := range results {
		if r.Seed {
			seeds++
		}
	}
	if seeds < 1 {
		t.Fatalf("probe found %d seeds", seeds)
	}
}
