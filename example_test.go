package swarmavail_test

import (
	"fmt"

	"swarmavail"
)

// The paper's headline scenario: an unpopular file behind a flaky
// publisher becomes far more available when bundled.
func ExampleSwarmParams_unavailability() {
	p := swarmavail.SwarmParams{
		Lambda: 1.0 / 60,  // one peer per minute
		Size:   4000,      // 4 MB in KB
		Mu:     50,        // 50 KB/s effective capacity
		R:      1.0 / 900, // publisher returns every 15 minutes
		U:      300,       // and stays for 5
	}
	fmt.Printf("single: P = %.2f\n", p.Unavailability())
	fmt.Printf("K=4 bundle: P = %.1e\n", p.Bundle(4, swarmavail.ScaledPublisher).Unavailability())
	// Output:
	// single: P = 0.63
	// K=4 bundle: P = 4.1e-11
}

// Download time combines active service with idle waiting (Lemma 3.2);
// bundling trades more service for much less waiting.
func ExampleSwarmParams_OptimalBundleSize() {
	p := swarmavail.SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	k, curve := p.OptimalBundleSize(4, swarmavail.ScaledPublisher)
	fmt.Printf("optimal K = %d\n", k)
	fmt.Printf("E[T](1) = %.0f s, E[T](%d) = %.0f s\n", curve[0], k, curve[k-1])
	// Output:
	// optimal K = 2
	// E[T](1) = 648 s, E[T](2) = 168 s
}

// The planning helpers answer the inverse question: how much bundling
// does a target availability need?
func ExampleSwarmParams_RequiredBundleSize() {
	p := swarmavail.SwarmParams{Lambda: 1.0 / 60, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	k, err := p.RequiredBundleSize(1e-6, 10, swarmavail.ScaledPublisher)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bundle %d files for P ≤ 1e-6\n", k)
	// Output:
	// bundle 4 files for P ≤ 1e-6
}

// EvaluateBundle compares a catalog's solo swarms with their bundle in
// one call — the §4.3.3 heterogeneous-popularity analysis.
func ExampleEvaluateBundle() {
	popular := swarmavail.SwarmParams{Lambda: 1.0 / 8, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	niche := swarmavail.SwarmParams{Lambda: 1.0 / 300, Size: 4000, Mu: 50, R: 1.0 / 900, U: 300}
	plan := swarmavail.EvaluateBundle([]swarmavail.SwarmParams{popular, niche}, 1.0/900, 300)
	fmt.Printf("niche solo:   %.0f s\n", plan.SoloTimes[1])
	fmt.Printf("in the bundle: %.0f s\n", plan.BundleTime)
	// Output:
	// niche solo:   713 s
	// in the bundle: 160 s
}
