// Command availgw is the cluster gateway: one availd-shaped API over N
// availd nodes. It consistent-hashes swarms across the nodes (whole
// swarms, never split — the same partitioning rule the engine's shards
// use in-process), fans POST /v1/ingest out through per-node retrying
// clients, scatter-gathers GET /v1/summary, /v1/availability/cdf and
// /v1/state by merging every node's state, and — when followers are
// configured — promotes a node's warm standby after consecutive failed
// health checks.
//
//	availgw -listen :8650 \
//	  -nodes http://n1:8647,http://n2:8647,http://n3:8647 \
//	  -followers http://f1:8657,http://f2:8657,http://f3:8657
//
// Node order is part of the cluster identity: every gateway (and every
// restart) must list the same nodes in the same order, or swarms route
// to different homes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swarmavail/internal/cluster"
	"swarmavail/internal/obs"
)

type options struct {
	listen         string
	ingestBin      string
	nodes          string
	followers      string
	nodeBins       string
	followerBins   string
	vnodes         int
	queueDepth     int
	sendPasses     int
	healthEvery    time.Duration
	failAfter      int
	probeTimeout   time.Duration
	promoteTimeout time.Duration
	drainGrace     time.Duration
}

func main() {
	var (
		opts     options
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.StringVar(&opts.listen, "listen", ":8650", "HTTP listen address")
	flag.StringVar(&opts.nodes, "nodes", "", "comma-separated leader base URLs, in slot order (required)")
	flag.StringVar(&opts.followers, "followers", "", "comma-separated follower base URLs, parallel to -nodes (empty slots allowed)")
	flag.StringVar(&opts.ingestBin, "ingest-bin", "", "binary streaming ingest listen address (e.g. :8651); requires -node-bins")
	flag.StringVar(&opts.nodeBins, "node-bins", "", "comma-separated node binary ingest addresses (availd -ingest-bin), parallel to -nodes")
	flag.StringVar(&opts.followerBins, "follower-bins", "", "comma-separated follower binary ingest addresses, parallel to -nodes (empty slots allowed)")
	flag.IntVar(&opts.vnodes, "vnodes", 0, "virtual nodes per slot on the hash ring (0 = default)")
	flag.IntVar(&opts.queueDepth, "queue-depth", 0, "queued pushes per node before back-pressure (0 = default)")
	flag.IntVar(&opts.sendPasses, "send-passes", 0, "client retry cycles per push before reporting failure (0 = default)")
	flag.DurationVar(&opts.healthEvery, "health-every", time.Second, "leader health-check cadence")
	flag.IntVar(&opts.failAfter, "fail-after", 3, "consecutive failed health checks before promoting the follower")
	flag.DurationVar(&opts.probeTimeout, "probe-timeout", 0, "timeout per health probe (0 = health-every)")
	flag.DurationVar(&opts.promoteTimeout, "promote-timeout", 0, "timeout per follower promotion attempt (0 = default)")
	flag.DurationVar(&opts.drainGrace, "drain-grace", 0, "keep answering /v1/healthz as draining this long before shutdown, so load balancers drain first")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, "availgw", obs.ParseLevel(*logLevel), *logJSON)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts, logger.Info, nil); err != nil {
		fmt.Fprintf(os.Stderr, "availgw: %v\n", err)
		os.Exit(1)
	}
}

// parseNodes zips -nodes, -followers, -node-bins and -follower-bins
// into the cluster membership.
func parseNodes(nodes, followers, nodeBins, followerBins string) ([]cluster.NodeConfig, error) {
	if strings.TrimSpace(nodes) == "" {
		return nil, fmt.Errorf("-nodes is required")
	}
	urls := strings.Split(nodes, ",")
	parallel := func(flagName, v string) ([]string, error) {
		if strings.TrimSpace(v) == "" {
			return nil, nil
		}
		parts := strings.Split(v, ",")
		if len(parts) != len(urls) {
			return nil, fmt.Errorf("%s has %d entries for %d nodes", flagName, len(parts), len(urls))
		}
		return parts, nil
	}
	fws, err := parallel("-followers", followers)
	if err != nil {
		return nil, err
	}
	bins, err := parallel("-node-bins", nodeBins)
	if err != nil {
		return nil, err
	}
	fbins, err := parallel("-follower-bins", followerBins)
	if err != nil {
		return nil, err
	}
	out := make([]cluster.NodeConfig, 0, len(urls))
	for i, u := range urls {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("node %d has an empty URL", i)
		}
		nc := cluster.NodeConfig{Name: fmt.Sprintf("node%d", i), URL: u}
		if fws != nil {
			nc.Follower = strings.TrimSuffix(strings.TrimSpace(fws[i]), "/")
		}
		if bins != nil {
			nc.BinAddr = strings.TrimSpace(bins[i])
		}
		if fbins != nil {
			nc.FollowerBin = strings.TrimSpace(fbins[i])
		}
		out = append(out, nc)
	}
	return out, nil
}

// run builds the gateway and serves until ctx ends; tests drive it
// directly with a ready channel for the bound address.
func run(ctx context.Context, opts options, logf func(string, ...any), ready chan<- net.Addr) error {
	nodes, err := parseNodes(opts.nodes, opts.followers, opts.nodeBins, opts.followerBins)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	g, err := cluster.NewGateway(cluster.GatewayConfig{
		Nodes:          nodes,
		Vnodes:         opts.vnodes,
		QueueDepth:     opts.queueDepth,
		SendPasses:     opts.sendPasses,
		HealthEvery:    opts.healthEvery,
		FailAfter:      opts.failAfter,
		ProbeTimeout:   opts.probeTimeout,
		PromoteTimeout: opts.promoteTimeout,
		Metrics:        reg,
		Logf: func(format string, args ...any) {
			if logf != nil {
				logf(fmt.Sprintf(format, args...))
			}
		},
	})
	if err != nil {
		return err
	}
	defer g.Close()

	h := obs.InstrumentHandler(reg, "gateway", g.Handler())
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	fmt.Printf("availgw: serving on %s over %d nodes\n", ln.Addr(), len(nodes))
	if ready != nil {
		ready <- ln.Addr()
	}
	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(ln) }()

	// Binary stream forwarding: a raw TCP front for the same fan-out,
	// forwarding stream frames per slot to each node's -ingest-bin.
	var binLn net.Listener
	if opts.ingestBin != "" {
		binLn, err = net.Listen("tcp", opts.ingestBin)
		if err != nil {
			srv.Close()
			ln.Close()
			return err
		}
		fmt.Printf("availgw: binary ingest on %s\n", binLn.Addr())
		go func() { errc <- g.ServeStream(binLn) }()
	}

	select {
	case err := <-errc:
		if binLn != nil {
			binLn.Close()
		}
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("availgw: signal received, draining")
	// Advertise draining on /v1/healthz while the listener is still up,
	// then wait out the grace period so load balancers stop routing to
	// us before Shutdown closes the listener — mirroring availd.
	g.SetDraining(true)
	if opts.drainGrace > 0 {
		time.Sleep(opts.drainGrace)
	}
	if binLn != nil {
		// Cut the streams at frame boundaries before the gateway's
		// upstream clients go away; keyed resends make the cut loss-free.
		binLn.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "availgw: shutdown: %v\n", err)
	}
	return nil
}
