package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/trace"
)

func TestParseNodes(t *testing.T) {
	nodes, err := parseNodes("http://a:1, http://b:2/ ,http://c:3", "http://fa:1,,http://fc:3", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	if nodes[0].URL != "http://a:1" || nodes[1].URL != "http://b:2" || nodes[2].URL != "http://c:3" {
		t.Fatalf("bad URLs: %+v", nodes)
	}
	if nodes[0].Follower != "http://fa:1" || nodes[1].Follower != "" || nodes[2].Follower != "http://fc:3" {
		t.Fatalf("bad followers: %+v", nodes)
	}
	if nodes[0].Name != "node0" || nodes[2].Name != "node2" {
		t.Fatalf("bad names: %+v", nodes)
	}

	if _, err := parseNodes("", "", "", ""); err == nil {
		t.Fatal("empty -nodes accepted")
	}
	if _, err := parseNodes("http://a:1,http://b:2", "http://f:1", "", ""); err == nil {
		t.Fatal("mismatched -followers length accepted")
	}
	if _, err := parseNodes("http://a:1,,http://c:3", "", "", ""); err == nil {
		t.Fatal("empty node URL accepted")
	}
}

// TestRunServesCluster boots the real run() against one in-process
// node and checks a push round-trips into the merged summary.
func TestRunServesCluster(t *testing.T) {
	e := ingest.New(ingest.Config{Shards: 2, BatchSize: 16})
	defer e.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		sc := trace.NewScanner[ingest.Record](r.Body)
		var ops []ingest.Op
		for sc.Scan() {
			ops = append(ops, ingest.EventOp(sc.Record()))
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := e.Submit(ops); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		ingest.WriteJSON(w, map[string]int{"accepted": len(ops)})
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		e.Flush()
		ingest.WriteState(w, e.Summary())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	})
	node := httptest.NewServer(mux)
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			listen:      "127.0.0.1:0",
			nodes:       node.URL,
			healthEvery: time.Hour,
		}, t.Logf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = fmt.Sprintf("http://%s", addr)
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never became ready")
	}

	client := ingest.NewHTTPClient(ingest.HTTPClientConfig{BaseURL: base, MaxAttempts: 2})
	recs := make([]ingest.Record, 50)
	for i := range recs {
		recs[i] = ingest.Record{SwarmID: i % 7, PeerID: 1, Seed: true, Online: true, Time: float64(i)}
	}
	if err := client.Push(ctx, recs); err != nil {
		t.Fatalf("push through gateway: %v", err)
	}
	sum, err := client.FetchSummary(ctx)
	if err != nil {
		t.Fatalf("fetch summary: %v", err)
	}
	if sum.Events != uint64(len(recs)) {
		t.Fatalf("gateway summary has %d events, pushed %d", sum.Events, len(recs))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never shut down")
	}
}

// TestGatewayHealthzDrainTransition: on shutdown the gateway must
// advertise draining on /v1/healthz — while still answering — for the
// -drain-grace window before the listener closes, mirroring availd.
func TestGatewayHealthzDrainTransition(t *testing.T) {
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
	}))
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			listen:      "127.0.0.1:0",
			nodes:       node.URL,
			healthEvery: time.Hour,
			drainGrace:  500 * time.Millisecond,
		}, t.Logf, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = fmt.Sprintf("http://%s", addr)
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never became ready")
	}

	healthz := func() (int, string) {
		resp, err := http.Get(base + "/v1/healthz")
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := healthz(); code != http.StatusOK {
		t.Fatalf("pre-drain healthz: %d %s", code, body)
	}

	cancel()
	// Inside the grace window the listener must still answer — with 503
	// draining — so load balancers see the transition before the socket
	// vanishes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := healthz()
		if code == http.StatusServiceUnavailable && strings.Contains(body, "draining") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never advertised draining (last: %d %s)", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway never shut down after the grace window")
	}
}
