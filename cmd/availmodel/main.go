// Command availmodel evaluates the availability model for a swarm and
// its bundles from the command line.
//
// Usage:
//
//	availmodel -lambda 0.0167 -size 4000 -mu 50 -r 0.00111 -u 300 \
//	           [-maxk 10] [-m 9] [-scaling scaled|constant] [-linger 0]
//
// It prints the Table-1 quantities, the eq. (9) busy period, the
// unavailability and patient-peer download time, the threshold-coverage
// variants, and the download-time-vs-K curve with its optimum.
package main

import (
	"flag"
	"fmt"
	"os"

	"swarmavail/internal/core"
)

func main() {
	var (
		lambda  = flag.Float64("lambda", 1.0/60, "peer arrival rate λ (1/s)")
		size    = flag.Float64("size", 4000, "content size s (KB)")
		mu      = flag.Float64("mu", 50, "effective swarm capacity μ (KB/s)")
		r       = flag.Float64("r", 1.0/900, "publisher arrival rate r (1/s)")
		u       = flag.Float64("u", 300, "mean publisher residence u (s)")
		maxK    = flag.Int("maxk", 10, "largest bundle size to evaluate")
		m       = flag.Int("m", 9, "coverage threshold for §3.3.3 quantities")
		scaling = flag.String("scaling", "scaled", "bundle publisher scaling: scaled or constant")
		linger  = flag.Float64("linger", 0, "mean altruistic lingering 1/γ (s), 0 = selfish")
	)
	flag.Parse()

	p := core.SwarmParams{Lambda: *lambda, Size: *size, Mu: *mu, R: *r, U: *u}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "availmodel: %v\n", err)
		os.Exit(2)
	}
	var sc core.PublisherScaling
	switch *scaling {
	case "scaled":
		sc = core.ScaledPublisher
	case "constant":
		sc = core.ConstantPublisher
	default:
		fmt.Fprintf(os.Stderr, "availmodel: unknown scaling %q\n", *scaling)
		os.Exit(2)
	}

	fmt.Printf("swarm: λ=%g /s  s=%g KB  μ=%g KB/s  r=%g /s  u=%g s\n",
		p.Lambda, p.Size, p.Mu, p.R, p.U)
	fmt.Printf("  service time s/μ:          %.1f s\n", p.ServiceTime())
	fmt.Printf("  offered load ρ:            %.3f concurrent peers\n", p.Rho())
	fmt.Printf("  busy period E[B] (eq.9):   %.4g s\n", p.BusyPeriod())
	fmt.Printf("  unavailability P (eq.10):  %.4g\n", p.Unavailability())
	fmt.Printf("  download time E[T] (eq.11): %.4g s\n", p.DownloadTime())
	fmt.Printf("  threshold m=%d: P (eq.14) = %.4g, E[T] = %.4g s\n",
		*m, p.ThresholdUnavailability(*m), p.ThresholdDownloadTime(*m))
	fmt.Printf("  single publisher (eq.16): P = %.4g, E[T] = %.4g s\n",
		p.SinglePublisherUnavailability(*m), p.SinglePublisherDownloadTime(*m))

	if *linger > 0 {
		l := core.Lingering{SwarmParams: p, Gamma: 1 / *linger}
		fmt.Printf("  with lingering 1/γ=%g s: P = %.4g, E[T] = %.4g s\n",
			*linger, l.Unavailability(), l.DownloadTime())
	}

	best, curve := p.OptimalBundleSize(*maxK, sc)
	fmt.Printf("\nbundling (%s publisher process):\n", sc)
	fmt.Printf("  %-4s %-14s %-12s %-12s\n", "K", "E[T] (s)", "P", "-log P")
	for k := 1; k <= *maxK; k++ {
		b := p.Bundle(k, sc)
		marker := " "
		if k == best {
			marker = "*"
		}
		fmt.Printf("%s %-4d %-14.4g %-12.4g %-12.4g\n",
			marker, k, curve[k-1], b.Unavailability(), p.AvailabilityGainExponent(k, sc))
	}
	fmt.Printf("optimal bundle size: K=%d\n", best)
}
