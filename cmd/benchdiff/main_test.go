package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: swarmavail/internal/obs
cpu: Fake CPU @ 3.00GHz
BenchmarkCounterInc-8        	165605597	         7.245 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8  	65471112	        18.31 ns/op	       0 B/op	       0 allocs/op
BenchmarkIngest/shards=8-8   	      37	  31404549 ns/op	       365 records/sec	 97000 records/op
some test log line that is not a benchmark
PASS
ok  	swarmavail/internal/obs	8.713s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(snap.Benchmarks), snap.Benchmarks)
	}
	byName := map[string]Benchmark{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	// The -8 procs suffix is stripped so snapshots compare across hosts.
	ci, ok := byName["BenchmarkCounterInc"]
	if !ok {
		t.Fatalf("BenchmarkCounterInc missing (names: %v)", byName)
	}
	if ci.Iterations != 165605597 || ci.Metrics["ns/op"] != 7.245 || ci.Metrics["allocs/op"] != 0 {
		t.Errorf("bad parse: %+v", ci)
	}
	ing := byName["BenchmarkIngest/shards=8"]
	if ing.Metrics["records/sec"] != 365 {
		t.Errorf("custom ReportMetric lost: %+v", ing)
	}
}

func mkSnap(pairs map[string]float64) *Snapshot {
	s := &Snapshot{}
	for name, ns := range pairs {
		s.Benchmarks = append(s.Benchmarks, Benchmark{
			Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": ns},
		})
	}
	return s
}

func TestDiff(t *testing.T) {
	base := mkSnap(map[string]float64{"A": 100, "B": 100, "C": 100, "Gone": 50})
	fresh := mkSnap(map[string]float64{"A": 105, "B": 150, "C": 60, "New": 10})
	lines, regressions, warnings := diff(base, fresh, defaultSpecs(0.2, 0.1, 0.2))
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only B grew >20%%)\n%s", regressions, strings.Join(lines, "\n"))
	}
	if warnings != 1 {
		t.Fatalf("warnings = %d, want 1 (Gone vanished)\n%s", warnings, strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"FAIL B", "good C", "ok   A", "new  New", "warn Gone: in baseline, missing from new run"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

// TestDiffWarnsOnUnvouchedBaseline pins the warning contract: a
// benchmark the baseline carries but the new run cannot time is a named
// warning, never a silent skip — and a zero baseline metric never
// renders as an infinite percentage.
func TestDiffWarnsOnUnvouchedBaseline(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		mkBench("Broken", map[string]float64{"ns/op": 100}),
		mkBench("Stale", map[string]float64{"ns/op": 0}),
		mkBench("Vanished", map[string]float64{"ns/op": 100}),
		mkBench("ZeroAllocs", map[string]float64{"ns/op": 100, "allocs/op": 0}),
	}}
	fresh := &Snapshot{Benchmarks: []Benchmark{
		mkBench("Broken", map[string]float64{"ns/op": 0}), // ran, but timed nothing
		mkBench("Stale", map[string]float64{"ns/op": 100}),
		mkBench("ZeroAllocs", map[string]float64{"ns/op": 100, "allocs/op": 4}),
	}}
	lines, regressions, warnings := diff(base, fresh, defaultSpecs(0.2, 0.1, 0.2))
	joined := strings.Join(lines, "\n")
	if warnings != 3 {
		t.Fatalf("warnings = %d, want 3:\n%s", warnings, joined)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (allocs from zero):\n%s", regressions, joined)
	}
	for _, want := range []string{
		"warn Broken: baseline expects 100 ns/op but the new run reports 0",
		"warn Stale: baseline has no usable ns/op",
		"warn Vanished: in baseline, missing from new run",
		"FAIL ZeroAllocs 0 → 4.0 allocs/op (from zero baseline)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "Inf") {
		t.Errorf("report leaks an infinite percentage:\n%s", joined)
	}
	if strings.Contains(joined, "skip ") {
		t.Errorf("silent skip survived:\n%s", joined)
	}
}

// mkBench builds a snapshot whose benchmarks carry arbitrary metric
// sets, for the multi-metric comparisons.
func mkBench(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

func TestDiffMultiMetric(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		mkBench("Ingest", map[string]float64{"ns/op": 100, "allocs/op": 50, "records/sec": 1000}),
		mkBench("Decode", map[string]float64{"ns/op": 100, "allocs/op": 0, "records/sec": 1000}),
	}}
	fresh := &Snapshot{Benchmarks: []Benchmark{
		// ns/op fine (+5%), allocs up 20% (> 10% threshold),
		// records/sec down 30% (> 20% threshold): two regressions.
		mkBench("Ingest", map[string]float64{"ns/op": 105, "allocs/op": 60, "records/sec": 700}),
		// allocs 0 → 3 is a regression from a zero baseline; throughput
		// up 50% is an improvement, not a regression.
		mkBench("Decode", map[string]float64{"ns/op": 100, "allocs/op": 3, "records/sec": 1500}),
	}}
	lines, regressions, warnings := diff(base, fresh, defaultSpecs(0.2, 0.1, 0.2))
	joined := strings.Join(lines, "\n")
	if regressions != 3 {
		t.Fatalf("regressions = %d, want 3:\n%s", regressions, joined)
	}
	if warnings != 0 {
		t.Fatalf("warnings = %d, want 0:\n%s", warnings, joined)
	}
	for _, want := range []string{
		"ok   Ingest 100 → 105 ns/op",
		"FAIL Ingest 50.0 → 60.0 allocs/op (+20.0%)",
		"FAIL Ingest 1000 → 700 records/sec (-30.0%)",
		"FAIL Decode 0 → 3.0 allocs/op (from zero baseline)",
		"good Decode 1000 → 1500 records/sec (+50.0%)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}

	// Per-metric opt-out: a negative threshold silences that metric.
	_, regressions, _ = diff(base, fresh, defaultSpecs(0.2, -1, -1))
	if regressions != 0 {
		t.Fatalf("with allocs+rate ignored: regressions = %d, want 0", regressions)
	}
}

func TestRunEmitAndCompare(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	newPath := filepath.Join(dir, "new.json")

	var out bytes.Buffer
	if code := run([]string{"-emit", basePath}, strings.NewReader(sampleOutput), &out); code != 0 {
		t.Fatalf("emit exit %d: %s", code, out.String())
	}
	// A second emit with one benchmark 2x slower.
	slower := strings.Replace(sampleOutput, "7.245 ns/op", "15.0 ns/op", 1)
	if code := run([]string{"-emit", newPath}, strings.NewReader(slower), &out); code != 0 {
		t.Fatalf("emit exit %d: %s", code, out.String())
	}

	out.Reset()
	if code := run([]string{"-base", basePath, "-new", newPath}, nil, &out); code != 1 {
		t.Fatalf("compare exit %d, want 1 (regression):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkCounterInc") {
		t.Errorf("regression not reported:\n%s", out.String())
	}

	// -warn keeps the exit status green for noisy smoke runs.
	out.Reset()
	if code := run([]string{"-warn", "-base", basePath, "-new", newPath}, nil, &out); code != 0 {
		t.Fatalf("warn-mode exit %d, want 0:\n%s", code, out.String())
	}

	// Identical snapshots: clean exit, no FAIL lines.
	out.Reset()
	if code := run([]string{"-base", basePath, "-new", basePath}, nil, &out); code != 0 {
		t.Fatalf("self-compare exit %d:\n%s", code, out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("self-compare reported a regression:\n%s", out.String())
	}

	// Emit with no benchmark lines is an error, not an empty file.
	out.Reset()
	if code := run([]string{"-emit", filepath.Join(dir, "empty.json")}, strings.NewReader("PASS\n"), &out); code != 1 {
		t.Fatalf("empty emit exit %d, want 1", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "empty.json")); err == nil {
		t.Error("empty snapshot was written")
	}
}
