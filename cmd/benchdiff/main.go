// Command benchdiff turns `go test -bench` output into comparable JSON
// snapshots and diffs two snapshots for performance regressions.
//
// Emit a snapshot (reads benchmark text from stdin or a file):
//
//	go test -run '^$' -bench . -benchmem ./internal/obs | benchdiff -emit BENCH_obs.json
//
// Compare a fresh run against a committed baseline, failing (exit 1) on
// any regression: ns/op or allocs/op growing, or records/sec shrinking,
// beyond each metric's threshold. Allocation counts are near-noiseless
// even at -benchtime=1x, which makes allocs/op the leading indicator —
// an alloc regression shows up long before the timing noise resolves.
//
//	benchdiff -base BENCH_baseline.json -new BENCH_new.json
//
// Per-metric thresholds: -threshold for ns/op (default 20%),
// -allocs-threshold for allocs/op (default 10%), -rate-threshold for
// records/sec (default 20%). Set a threshold negative to ignore that
// metric.
//
// A benchmark the baseline carries but the new run cannot vouch for —
// missing from the run, or reporting a zero/absent ns/op — is a named
// warning and fails the compare the same way a regression does: silent
// coverage shrinkage is how baselines rot.
//
// With -warn regressions and warnings are reported but the exit status
// stays 0 — the mode CI smoke jobs use, where -benchtime=1x numbers are
// too noisy to gate a merge on.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. Metrics maps unit → value
// for every "value unit" pair on the line (ns/op, B/op, allocs/op and
// any ReportMetric extras such as records/sec).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the emitted file format.
type Snapshot struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix strips the trailing "-N" procs suffix from benchmark
// names so snapshots from machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench`
// output. Lines that are not benchmark results (headers, PASS/ok,
// arbitrary test logging) are ignored.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName  N  value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// metricSpec is one compared metric: its unit string as it appears in
// benchmark output, the fractional change that counts as a regression,
// and its direction (ns/op and allocs/op regress by growing,
// records/sec by shrinking). A negative threshold disables the metric.
type metricSpec struct {
	unit        string
	threshold   float64
	lowerBetter bool
}

// defaultSpecs builds the standard metric set from the three threshold
// flags.
func defaultSpecs(nsop, allocs, rate float64) []metricSpec {
	return []metricSpec{
		{unit: "ns/op", threshold: nsop, lowerBetter: true},
		{unit: "allocs/op", threshold: allocs, lowerBetter: true},
		{unit: "records/sec", threshold: rate, lowerBetter: false},
	}
}

// diff compares the specs' metrics between base and new. It returns
// human-readable report lines (one per benchmark per metric present on
// both sides), the number of metric regressions beyond their
// thresholds, and the number of warnings: baselined benchmarks the new
// run cannot vouch for because they are missing or report no usable
// ns/op. A warning is not a measured regression, but it means baseline
// coverage silently shrank — CI treats it like one unless -warn.
func diff(base, fresh *Snapshot, specs []metricSpec) (lines []string, regressions, warnings int) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, n := range fresh.Benchmarks {
		seen[n.Name] = true
		b, ok := baseBy[n.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("new  %s (no baseline)", n.Name))
			continue
		}
		// A benchmark both sides know about but either side cannot
		// time is a named warning: the baseline entry exists precisely
		// so this benchmark stays covered.
		if b.Metrics["ns/op"] <= 0 {
			lines = append(lines, fmt.Sprintf("warn %s: baseline has no usable ns/op (%v); re-emit the baseline",
				n.Name, b.Metrics["ns/op"]))
			warnings++
			continue
		}
		if n.Metrics["ns/op"] <= 0 {
			lines = append(lines, fmt.Sprintf("warn %s: baseline expects %s ns/op but the new run reports %v — benchmark broken or skipped?",
				n.Name, fmtMetric(b.Metrics["ns/op"]), n.Metrics["ns/op"]))
			warnings++
			continue
		}
		for _, spec := range specs {
			if spec.threshold < 0 {
				continue
			}
			bv, okB := b.Metrics[spec.unit]
			nv, okN := n.Metrics[spec.unit]
			if !okB || !okN {
				continue
			}
			// delta is the metric's fractional change; worse is the
			// change in the "bad" direction for this metric. A zero
			// baseline (e.g. allocs/op 0 → n) has no finite percentage:
			// it regresses if the metric grew in the bad direction, and
			// the report shows the raw values instead of an "+Inf%".
			var delta float64
			fromZero := bv == 0 && nv != 0
			switch {
			case bv == nv:
				delta = 0
			case fromZero:
				delta = math.Inf(1)
			default:
				delta = nv/bv - 1
			}
			worse := delta
			if !spec.lowerBetter {
				worse = -delta
			}
			mark := "ok  "
			if worse > spec.threshold {
				mark = "FAIL"
				regressions++
			} else if worse < -spec.threshold {
				mark = "good"
			}
			change := fmt.Sprintf("%+.1f%%", 100*delta)
			if fromZero {
				change = "from zero baseline"
			}
			lines = append(lines, fmt.Sprintf("%s %s %s → %s %s (%s)",
				mark, n.Name, fmtMetric(bv), fmtMetric(nv), spec.unit, change))
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			lines = append(lines, fmt.Sprintf("warn %s: in baseline, missing from new run — benchmark renamed or not selected?", b.Name))
			warnings++
		}
	}
	return lines, regressions, warnings
}

// fmtMetric keeps small values readable (7.2) without drowning big ones
// in decimals (4644068).
func fmtMetric(v float64) string {
	if v != 0 && math.Abs(v) < 100 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (exit int) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		emit      = fs.String("emit", "", "parse benchmark text (stdin or trailing file arg) and write a JSON snapshot here")
		base      = fs.String("base", "", "baseline snapshot to compare against")
		fresh     = fs.String("new", "", "fresh snapshot to compare")
		threshold = fs.Float64("threshold", 0.2, "fractional ns/op growth that counts as a regression (negative = ignore)")
		allocsThr = fs.Float64("allocs-threshold", 0.1, "fractional allocs/op growth that counts as a regression (negative = ignore)")
		rateThr   = fs.Float64("rate-threshold", 0.2, "fractional records/sec shrinkage that counts as a regression (negative = ignore)")
		warn      = fs.Bool("warn", false, "report regressions but exit 0 (for noisy smoke runs)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *emit != "":
		in := stdin
		if fs.NArg() == 1 {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				fmt.Fprintf(stdout, "benchdiff: %v\n", err)
				return 1
			}
			defer f.Close()
			in = f
		}
		snap, err := parseBench(in)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 1
		}
		if len(snap.Benchmarks) == 0 {
			fmt.Fprintln(stdout, "benchdiff: no benchmark results in input")
			return 1
		}
		b, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*emit, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *emit)
		return 0

	case *base != "" && *fresh != "":
		bs, err := readSnapshot(*base)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 1
		}
		ns, err := readSnapshot(*fresh)
		if err != nil {
			fmt.Fprintf(stdout, "benchdiff: %v\n", err)
			return 1
		}
		lines, regressions, warnings := diff(bs, ns, defaultSpecs(*threshold, *allocsThr, *rateThr))
		for _, l := range lines {
			fmt.Fprintln(stdout, l)
		}
		bad := false
		if regressions > 0 {
			fmt.Fprintf(stdout, "benchdiff: %d metric(s) regressed beyond threshold\n", regressions)
			bad = true
		}
		if warnings > 0 {
			fmt.Fprintf(stdout, "benchdiff: %d baselined benchmark(s) not vouched for by the new run\n", warnings)
			bad = true
		}
		if bad {
			if !*warn {
				return 1
			}
			fmt.Fprintln(stdout, "benchdiff: -warn set, not failing")
		}
		return 0

	default:
		fmt.Fprintln(stdout, "benchdiff: need either -emit OUT or -base A -new B (see -h)")
		return 2
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout))
}
