// Command figures regenerates every table and figure of the paper's
// evaluation from the reproduction's models, simulators and synthetic
// datasets. ASCII renderings go to stdout; CSV series are written under
// the output directory for external plotting.
//
// Usage:
//
//	figures [-fig all|fig1|fig3|fig4|fig5|fig6a|fig6b|fig6c|fig7|sec2.3|table-bm|...]
//	        [-scale quick|full] [-seed N] [-out DIR] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swarmavail/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "artefact ID to regenerate, or 'all'")
		scale  = flag.String("scale", "quick", "quick or full")
		seed   = flag.Int64("seed", 42, "random seed")
		outDir = flag.String("out", "out", "directory for CSV output ('' disables)")
		list   = flag.Bool("list", false, "list available artefacts and exit")
		width  = flag.Int("width", 72, "ASCII chart width")
		height = flag.Int("height", 16, "ASCII chart height")
	)
	flag.Parse()

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-20s %s\n", d.ID, d.Description)
		}
		return
	}

	sc := experiments.Quick
	if *scale == "full" {
		sc = experiments.Full
	}

	var drivers []experiments.Driver
	if *fig == "all" {
		drivers = experiments.All()
	} else {
		for _, id := range strings.Split(*fig, ",") {
			d, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown artefact %q (use -list)\n", id)
				os.Exit(2)
			}
			drivers = append(drivers, d)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, d := range drivers {
		fmt.Printf("==== %s — %s (scale=%s, seed=%d) ====\n", d.ID, d.Description, sc, *seed)
		res, err := d.Run(sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", d.ID, err)
			failed = true
			continue
		}
		opts := experiments.RenderOptions{Width: *width, Height: *height, CSVDir: *outDir}
		if err := experiments.WriteResult(os.Stdout, res, opts); err != nil {
			fmt.Fprintf(os.Stderr, "figures: emitting %s: %v\n", d.ID, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
