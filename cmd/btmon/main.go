// Command btmon is the §2-style monitoring agent: it joins a swarm's
// control plane, records the bitfields peers advertise, and reports seed
// availability over time — without uploading or downloading content.
//
// Usage:
//
//	btmon -torrent bundle.torrent [-interval 10s] [-count 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
)

func main() {
	var (
		torrentPath = flag.String("torrent", "", "torrent file to monitor (required)")
		interval    = flag.Duration("interval", 10*time.Second, "probe interval")
		count       = flag.Int("count", 0, "number of probes (0 = forever)")
		timeout     = flag.Duration("timeout", 3*time.Second, "per-peer connect timeout")
	)
	flag.Parse()
	if *torrentPath == "" {
		fmt.Fprintln(os.Stderr, "btmon: -torrent is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*torrentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}
	tor, err := metainfo.Unmarshal(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("btmon: monitoring %q via %s\n", tor.Info.Name, tor.Announce)

	probes := 0
	withSeed := 0
	for {
		results, err := peer.Probe(tor, peer.ProbeConfig{DialTimeout: *timeout})
		if err != nil {
			fmt.Fprintf(os.Stderr, "btmon: probe failed: %v\n", err)
		} else {
			seeds, leechers := 0, 0
			for _, r := range results {
				if r.Seed {
					seeds++
				} else {
					leechers++
				}
			}
			probes++
			if seeds > 0 {
				withSeed++
			}
			fmt.Printf("%s  peers=%d seeds=%d leechers=%d  seed-availability=%.2f\n",
				time.Now().Format(time.TimeOnly), len(results), seeds, leechers,
				float64(withSeed)/float64(probes))
		}
		if *count > 0 && probes >= *count {
			return
		}
		time.Sleep(*interval)
	}
}
