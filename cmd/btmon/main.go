// Command btmon is the §2-style monitoring agent: it joins a swarm's
// control plane (HTTP or BEP 15 UDP tracker), records the bitfields
// peers advertise, and reports seed availability over time — without
// uploading or downloading content.
//
// The default is one interactive monitor printing per-round lines.
// With -fleet N it becomes the paper's measurement infrastructure in
// miniature: N concurrent lightweight monitors with jittered probe
// phases and a shared dial budget, each streaming its observations into
// availd/availgw over the binary ingest protocol (-stream) with
// exactly-once keys.
//
// Usage:
//
//	btmon -torrent bundle.torrent [-interval 10s] [-count 0]
//	btmon -torrent bundle.torrent -fleet 64 -stream 127.0.0.1:9400 -swarm 1
//
// Probing runs on a ticker, so the cadence is independent of probe
// duration, and SIGINT/SIGTERM flushes a final summary (and any
// buffered stream records) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/ingest"
	"swarmavail/internal/monitor"
	"swarmavail/internal/obs"
)

func main() {
	var (
		torrentPath  = flag.String("torrent", "", "torrent file to monitor (required)")
		interval     = flag.Duration("interval", 10*time.Second, "probe interval")
		count        = flag.Int("count", 0, "number of probe rounds per monitor (0 = forever)")
		timeout      = flag.Duration("timeout", 3*time.Second, "per-peer connect timeout")
		bitfieldWait = flag.Duration("bitfield-wait", 0, "max wait for a peer's first message (default: -timeout)")
		fleet        = flag.Int("fleet", 1, "number of concurrent monitors")
		dialBudget   = flag.Int("dial-budget", 0, "fleet-wide concurrent probe cap (0 = fleet size)")
		pex          = flag.Bool("pex", false, "expand each probe with BEP-11 peer exchange gossip")
		streamAddr   = flag.String("stream", "", "availd/availgw binary ingest address to stream records to")
		swarmID      = flag.Int("swarm", 1, "swarm id for streamed records")
		source       = flag.String("source", "", "exactly-once source id prefix (default: random)")
		admin        = flag.String("admin", "", "admin listen address for /metrics and /debug/vars")
	)
	flag.Parse()
	if *torrentPath == "" {
		fmt.Fprintln(os.Stderr, "btmon: -torrent is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*torrentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}
	tor, err := metainfo.Unmarshal(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btmon: admin listen: %v\n", err)
			os.Exit(1)
		}
		go func() {
			srv := &http.Server{Handler: obs.AdminHandler(reg, false), ReadHeaderTimeout: 5 * time.Second}
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "btmon: admin server: %v\n", err)
			}
		}()
		fmt.Printf("btmon: admin on %s\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fleet > 1 || *streamAddr != "" {
		runFleet(ctx, tor, fleetConfig{
			interval: *interval, count: *count, timeout: *timeout,
			bitfieldWait: *bitfieldWait, fleet: *fleet, dialBudget: *dialBudget,
			pex: *pex, streamAddr: *streamAddr, swarmID: *swarmID,
			source: *source, reg: reg,
		})
		return
	}
	runSingle(ctx, tor, *interval, *count, *timeout, *bitfieldWait, *pex)
}

type fleetConfig struct {
	interval     time.Duration
	count        int
	timeout      time.Duration
	bitfieldWait time.Duration
	fleet        int
	dialBudget   int
	pex          bool
	streamAddr   string
	swarmID      int
	source       string
	reg          *obs.Registry
}

// runFleet drives N monitors and prints the final tally; ctx
// cancellation (Ctrl-C) still flushes every stream.
func runFleet(ctx context.Context, tor *metainfo.Torrent, fc fleetConfig) {
	fmt.Printf("btmon: fleet of %d monitoring %q via %s\n", fc.fleet, tor.Info.Name, tor.Announce)
	f, err := monitor.New(monitor.Config{
		Torrent:      tor,
		SwarmID:      fc.swarmID,
		Monitors:     fc.fleet,
		Interval:     fc.interval,
		Rounds:       fc.count,
		DialTimeout:  fc.timeout,
		BitfieldWait: fc.bitfieldWait,
		PEX:          fc.pex,
		DialBudget:   fc.dialBudget,
		Stream:       ingest.StreamClientConfig{Addr: fc.streamAddr, Source: fc.source},
		Metrics:      fc.reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "btmon: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}
	stats, err := f.Run(ctx)
	fmt.Printf("btmon: fleet done  monitors=%d rounds=%d failures=%d peers-observed=%d records=%d seed-availability=%.2f\n",
		stats.Monitors, stats.Rounds, stats.ProbeFailures, stats.PeersObserved,
		stats.RecordsEmitted, seedAvailability(stats.SeedRounds, stats.Rounds-stats.ProbeFailures))
	if err != nil {
		fmt.Fprintf(os.Stderr, "btmon: %v\n", err)
		os.Exit(1)
	}
}

// runSingle is the interactive one-monitor mode: one line per round on
// a drift-free ticker, summary on exit or Ctrl-C.
func runSingle(ctx context.Context, tor *metainfo.Torrent, interval time.Duration, count int, timeout, bitfieldWait time.Duration, pex bool) {
	fmt.Printf("btmon: monitoring %q via %s\n", tor.Info.Name, tor.Announce)
	pc := peer.ProbeConfig{DialTimeout: timeout, BitfieldWait: bitfieldWait, PEX: pex}
	probes, withSeed := 0, 0
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		results, err := peer.Probe(tor, pc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btmon: probe failed: %v\n", err)
		} else {
			seeds, leechers := 0, 0
			for _, r := range results {
				if r.Seed {
					seeds++
				} else {
					leechers++
				}
			}
			probes++
			if seeds > 0 {
				withSeed++
			}
			fmt.Printf("%s  peers=%d seeds=%d leechers=%d  seed-availability=%.2f\n",
				time.Now().Format(time.TimeOnly), len(results), seeds, leechers,
				seedAvailability(withSeed, probes))
		}
		if count > 0 && probes >= count {
			break
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			fmt.Printf("btmon: interrupted  probes=%d rounds-with-seed=%d seed-availability=%.2f\n",
				probes, withSeed, seedAvailability(withSeed, probes))
			return
		}
	}
	fmt.Printf("btmon: done  probes=%d rounds-with-seed=%d seed-availability=%.2f\n",
		probes, withSeed, seedAvailability(withSeed, probes))
}

func seedAvailability(withSeed, probes int) float64 {
	if probes <= 0 {
		return 0
	}
	return float64(withSeed) / float64(probes)
}
