// Command btnode runs a BitTorrent peer: it can create a torrent from a
// content file, seed existing content, or leech a torrent to disk.
//
// Create a torrent — pass several comma-separated content files to
// publish a bundle (one swarm carrying them all, as the paper studies):
//
//	btnode -create -announce http://127.0.0.1:7070/announce \
//	       -torrent bundle.torrent -content ep1.avi,ep2.avi [-piece 262144]
//
// Seed (content files concatenate in torrent order):
//
//	btnode -torrent bundle.torrent -content ep1.avi,ep2.avi
//
// Leech (the bundle is written as one concatenated file):
//
//	btnode -torrent bundle.torrent -out downloaded.bin
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"swarmavail/internal/bittorrent/metainfo"
	"swarmavail/internal/bittorrent/peer"
	"swarmavail/internal/obs"
)

func main() {
	var (
		create      = flag.Bool("create", false, "create a torrent from -content and exit")
		torrentPath = flag.String("torrent", "", "torrent file path (required)")
		contentPath = flag.String("content", "", "content file (create/seed)")
		outPath     = flag.String("out", "", "output file (leech)")
		announce    = flag.String("announce", "http://127.0.0.1:7070/announce", "tracker URL (create)")
		pieceLen    = flag.Int64("piece", 256*1024, "piece length in bytes (create)")
		listen      = flag.String("listen", "127.0.0.1:0", "peer listen address")
		dialTimeout = flag.Duration("dial-timeout", 0, "peer dial timeout (0 = default)")
		admin       = flag.String("admin", "", "admin listen address for /metrics, /debug/vars and pprof (e.g. 127.0.0.1:8649)")
		pprofOn     = flag.Bool("pprof", false, "enable net/http/pprof on the -admin listener")
	)
	flag.Parse()
	if *torrentPath == "" {
		fmt.Fprintln(os.Stderr, "btnode: -torrent is required")
		os.Exit(2)
	}

	if *create {
		if err := createTorrent(*torrentPath, *contentPath, *announce, *pieceLen); err != nil {
			fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
			os.Exit(1)
		}
		return
	}

	raw, err := os.ReadFile(*torrentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
		os.Exit(1)
	}
	tor, err := metainfo.Unmarshal(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
		os.Exit(1)
	}

	// Classified tracker/dial events reach the console: "announce failed
	// (temporary …)" is the tracker briefly down and being retried with
	// backoff; "announce rejected (fatal …)" means the tracker answered
	// and refused us (e.g. a torrent it does not serve).
	// The peer writes its announce/dial/piece series onto this registry;
	// -admin exposes it (plus process metrics and opt-in pprof).
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btnode: admin listen: %v\n", err)
			os.Exit(1)
		}
		go func() {
			srv := &http.Server{
				Handler:           obs.AdminHandler(reg, *pprofOn),
				ReadHeaderTimeout: 5 * time.Second,
			}
			if err := srv.Serve(ln); err != nil {
				fmt.Fprintf(os.Stderr, "btnode: admin server: %v\n", err)
			}
		}()
		fmt.Printf("btnode: admin on %s (pprof %v)\n", ln.Addr(), *pprofOn)
	}

	cfg := peer.Config{
		Torrent:     tor,
		ListenAddr:  *listen,
		DialTimeout: *dialTimeout,
		Metrics:     reg,
		Logf: func(format string, args ...any) {
			fmt.Printf("btnode: "+format+"\n", args...)
		},
	}
	if *contentPath != "" {
		content, err := readContents(*contentPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
			os.Exit(1)
		}
		cfg.Content = content
	}
	n, err := peer.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
		os.Exit(1)
	}
	if err := n.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "btnode: %v\n", err)
		os.Exit(1)
	}
	defer n.Stop()
	role := "leeching"
	if cfg.Content != nil {
		role = "seeding"
	}
	fmt.Printf("btnode %s %q on %s (infohash %s)\n",
		role, tor.Info.Name, n.Addr(), n.InfoHash())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			fmt.Println("btnode: stopping")
			return
		case <-n.Done():
			if *outPath != "" {
				if err := os.WriteFile(*outPath, n.Bytes(), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "btnode: writing output: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("btnode: download complete, wrote %s; seeding until interrupted\n", *outPath)
				*outPath = "" // write once, keep seeding
			}
		case <-ticker.C:
			have, total := n.Progress()
			fmt.Printf("btnode: %d/%d pieces, %d connections\n", have, total, n.NumConns())
		}
	}
}

// readContents loads and concatenates comma-separated content files in
// order — the byte layout of a multi-file torrent.
func readContents(paths string) ([]byte, error) {
	var content []byte
	for _, p := range strings.Split(paths, ",") {
		b, err := os.ReadFile(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		content = append(content, b...)
	}
	return content, nil
}

// createTorrent builds a torrent over one or more content files; two or
// more files make a bundle.
func createTorrent(torrentPath, contentPaths, announce string, pieceLen int64) error {
	if contentPaths == "" {
		return fmt.Errorf("-content is required with -create")
	}
	paths := strings.Split(contentPaths, ",")
	var files []metainfo.File
	var content []byte
	for _, p := range paths {
		p = strings.TrimSpace(p)
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		files = append(files, metainfo.File{Path: filepath.Base(p), Length: int64(len(b))})
		content = append(content, b...)
	}
	name := filepath.Base(paths[0])
	if len(files) > 1 {
		name = fmt.Sprintf("bundle-of-%d", len(files))
	}
	info, err := metainfo.New(name, pieceLen, files, content)
	if err != nil {
		return err
	}
	tor := &metainfo.Torrent{Announce: announce, Info: *info}
	raw, err := tor.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(torrentPath, raw, 0o644); err != nil {
		return err
	}
	h, err := info.Hash()
	if err != nil {
		return err
	}
	kind := "file"
	if info.IsBundle() {
		kind = fmt.Sprintf("bundle of %d files", len(files))
	}
	fmt.Printf("btnode: wrote %s (%s, %d pieces, infohash %s)\n",
		torrentPath, kind, info.NumPieces(), h)
	return nil
}
