// Command study runs the synthetic measurement campaign end to end: it
// generates the seven-month availability study and the single-day
// census, persists both as JSON-lines datasets, re-reads them, and
// prints the §2 analysis — the full pipeline the paper's measurement
// section describes, on the synthetic substrate.
//
// Usage:
//
//	study [-swarms 20000] [-census 100000] [-seed 42] [-dir data]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"swarmavail/internal/measure"
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

func main() {
	var (
		swarms = flag.Int("swarms", 20000, "swarms in the availability study")
		census = flag.Int("census", 100000, "swarms in the single-day census")
		seed   = flag.Int64("seed", 42, "random seed")
		dir    = flag.String("dir", "data", "output directory for the datasets")
	)
	flag.Parse()

	if err := run(*swarms, *census, *seed, *dir); err != nil {
		fmt.Fprintf(os.Stderr, "study: %v\n", err)
		os.Exit(1)
	}
}

func run(swarms, census int, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// --- Availability study (Figure 1's input). ---
	fmt.Printf("generating availability study: %d swarms, 210 days…\n", swarms)
	traces := trace.GenerateStudy(trace.DefaultStudyConfig(swarms, seed))
	tracePath := filepath.Join(dir, "availability_study.jsonl")
	if err := writeFile(tracePath, func(f *os.File) error {
		return trace.WriteTraces(f, traces)
	}); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", tracePath)

	// Re-read to prove the archival round trip, then analyse. The
	// scanner streams one record at a time — only the per-swarm
	// availability pairs are retained, so the analysis pass works at
	// census scale without materialising the dataset — and decodes in
	// parallel, which is where this pass spends its CPU.
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	sc := trace.NewParallelTraceScanner(f, 0)
	defer sc.Close()
	var fm, fl []float64
	for sc.Scan() {
		a, b := measure.Availability(sc.Record())
		fm = append(fm, a)
		fl = append(fl, b)
	}
	f.Close()
	if err := sc.Err(); err != nil {
		return err
	}
	h := measure.HeadlinesFromAvailabilities(fm, fl)
	fmt.Printf("  swarms analysed:                 %d\n", h.Swarms)
	fmt.Printf("  fully seeded through month 1:    %.1f%%  (paper: <35%%)\n",
		100*h.FullyAvailableFirstMonth)
	fmt.Printf("  availability ≤20%% over trace:    %.1f%%  (paper: ≈80%%)\n",
		100*h.MostlyUnavailableOverall)

	firstMonth, full := stats.NewECDF(fm), stats.NewECDF(fl)
	fmt.Println("  seed-availability quantiles (first month / whole trace):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		fmt.Printf("    p%-3.0f  %.2f / %.2f\n", q*100, firstMonth.Quantile(q), full.Quantile(q))
	}

	// --- Census (§2.3's input). ---
	fmt.Printf("\ngenerating census snapshot: %d swarms…\n", census)
	snaps := trace.GenerateSnapshot(trace.SnapshotConfig{Seed: seed + 1, NumSwarms: census})
	censusPath := filepath.Join(dir, "census.jsonl")
	if err := writeFile(censusPath, func(f *os.File) error {
		return trace.WriteSnapshots(f, snaps)
	}); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", censusPath)

	ext := measure.ExtentOfBundling(snaps)
	fmt.Println("  extent of bundling:")
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		e := ext[cat]
		fmt.Printf("    %-6s %8d swarms, %7d bundles (%.1f%%), %d collections\n",
			cat, e.Swarms, e.Bundles, 100*e.BundleFraction(), e.Collections)
	}
	cmp := measure.CompareAvailability(snaps, trace.Books)
	fmt.Printf("  books: seedless %.1f%% overall vs %.1f%% of bundles (paper: 62%% vs 36%%)\n",
		100*cmp.SeedlessAll, 100*cmp.SeedlessBundles)
	fmt.Printf("  books: mean downloads %.0f overall vs %.0f for bundles (paper: 2578 vs 4216)\n",
		cmp.MeanDownloadsAll, cmp.MeanDownloadsBundles)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
