package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"swarmavail/internal/dist"
	"swarmavail/internal/ingest"
	"swarmavail/internal/trace"
)

// TestGracefulShutdownZeroLoss kills the daemon with a real SIGTERM in
// the middle of a concurrent replay-over-network and checks the
// acceptance invariant: every record the server acknowledged before
// (or while) dying is present in the final drained state. Batches the
// retrying clients could not get acknowledged are allowed to be lost —
// they were never acked, so the pushers know to replay them.
func TestGracefulShutdownZeroLoss(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	e := ingest.New(ingest.Config{Shards: 4, QueueDepth: 16})
	ready := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, e, options{listen: "127.0.0.1:0"}, ready, nil) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited early: %v", err)
	}
	url := fmt.Sprintf("http://%s/v1/ingest", addr)

	// Concurrent pushers stream distinct swarms; acked counts records
	// the server has taken responsibility for.
	var acked atomic.Uint64
	var wg sync.WaitGroup
	const pushers = 4
	const batch = 50
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := ingest.NewHTTPClient(ingest.HTTPClientConfig{
				URL:         url,
				Seed:        int64(p + 1),
				MaxAttempts: 3,
				BackoffBase: 2 * time.Millisecond,
				BackoffCap:  10 * time.Millisecond,
			})
			for seq := 0; ; seq++ {
				recs := make([]ingest.Record, batch)
				for i := range recs {
					recs[i] = ingest.Record{
						SwarmID: p*1_000_000 + seq*batch + i,
						PeerID:  1, Seed: true, Online: true, Time: 0,
					}
				}
				// A plain background context: the pusher learns about the
				// shutdown the way a remote client would — from the wire.
				if err := c.Push(context.Background(), recs); err != nil {
					return
				}
				acked.Add(batch)
			}
		}(p)
	}

	// Let the replay get going, then deliver a real SIGTERM to the
	// process, exactly what a supervisor would send.
	deadline := time.Now().Add(5 * time.Second)
	for acked.Load() < 10*batch && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if acked.Load() == 0 {
		t.Fatalf("no batches acked before the signal; test would be vacuous")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not shut down after SIGTERM")
	}
	wg.Wait()

	// serve has closed (and therefore drained) the engine; post-close
	// reads return the final state.
	got := e.Summary().Events
	if got < acked.Load() {
		t.Fatalf("acknowledged records lost in shutdown: engine holds %d events, clients were acked %d", got, acked.Load())
	}
	t.Logf("acked %d records across %d pushers; engine drained %d events", acked.Load(), pushers, got)
}

// TestPushStudyRoundTrip replays a small archived study over the
// network into a second daemon and checks every monitor record arrives.
func TestPushStudyRoundTrip(t *testing.T) {
	var lines []byte
	const swarms, sessions = 20, 3
	for id := 1; id <= swarms; id++ {
		tr := trace.SwarmTrace{Meta: trace.SwarmMeta{ID: id}, MonitoredDays: 240}
		for s := 0; s < sessions; s++ {
			tr.SeedSessions = append(tr.SeedSessions,
				dist.Interval{Start: float64(s) * 10, End: float64(s)*10 + 5})
		}
		b, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, b...)
		lines = append(lines, '\n')
	}
	path := filepath.Join(t.TempDir(), "study.jsonl")
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}

	e := ingest.New(ingest.Config{Shards: 2})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() { served <- serve(ctx, e, options{listen: "127.0.0.1:0"}, ready, nil) }()
	addr := <-ready

	url := fmt.Sprintf("http://%s/v1/ingest", addr)
	if err := pushStudy(context.Background(), url, path, 32); err != nil {
		t.Fatalf("pushStudy: %v", err)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	want := uint64(swarms * sessions * 2) // online + offline per session
	if got := e.Summary().Events; got != want {
		t.Fatalf("engine holds %d events, want %d", got, want)
	}
}
