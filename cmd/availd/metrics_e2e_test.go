package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"swarmavail/internal/ingest"
)

// scrapeMetrics GETs /metrics from base and parses the Prometheus text
// exposition into series-id → value ("name" or `name{k="v",...}`).
func scrapeMetrics(t *testing.T, base net.Addr) map[string]float64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", base))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("scrape: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("scrape: bad value in %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	return series
}

// metricFamilies reduces series ids to their distinct metric names
// (labels and histogram suffixes stripped).
func metricFamilies(series map[string]float64) map[string]bool {
	fams := make(map[string]bool)
	for id := range series {
		name := id
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		fams[name] = true
	}
	return fams
}

// TestMetricsScrapeE2E is the end-to-end observability check: boot the
// daemon with an admin listener, push records over the API, scrape
// /metrics on both listeners, and confirm the counters agree with what
// was pushed — including after a graceful drain. It also enforces the
// acceptance floor of ≥ 12 distinct series spanning ingest, HTTP and
// process metrics.
func TestMetricsScrapeE2E(t *testing.T) {
	e := ingest.New(ingest.Config{Shards: 2, QueueDepth: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	adminReady := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() {
		served <- serve(ctx, e,
			options{listen: "127.0.0.1:0", admin: "127.0.0.1:0", pprof: true},
			ready, adminReady)
	}()
	var addr, adminAddr net.Addr
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited early: %v", err)
	}
	adminAddr = <-adminReady

	push := func(swarmBase, n int) {
		t.Helper()
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := 0; i < n; i++ {
			rec := ingest.Record{SwarmID: swarmBase + i, PeerID: 1, Seed: true, Online: true}
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := http.Post(fmt.Sprintf("http://%s/v1/ingest", addr), "application/json", &buf)
		if err != nil {
			t.Fatalf("push: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: status %d", resp.StatusCode)
		}
	}

	const first = 40
	push(1000, first)
	e.Flush() // all acked records applied before the scrape

	series := scrapeMetrics(t, adminAddr)
	if got := series["ingest_records_total"]; got != first {
		t.Errorf("ingest_records_total = %v, want %d", got, first)
	}
	var applied float64
	for id, v := range series {
		if strings.HasPrefix(id, "ingest_applied_total{") {
			applied += v
		}
	}
	if applied != first {
		t.Errorf("sum of per-shard ingest_applied_total = %v, want %d", applied, first)
	}
	if got := series["ingest_shed_total"]; got != 0 {
		t.Errorf("ingest_shed_total = %v, want 0", got)
	}
	if got := series["availd_swarms"]; got != first {
		t.Errorf("availd_swarms = %v, want %d", got, first)
	}

	// Read-path series: two lock-free summary reads of a quiet engine —
	// the second serves the memoized merge and counts a cache hit. The
	// flush above published every shard snapshot, so the staleness gauge
	// reads 0 and the window rings hold the pushed events' bins.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/summary", addr))
		if err != nil {
			t.Fatalf("summary read %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	series = scrapeMetrics(t, adminAddr)
	if got, ok := series["read_cache_hits_total"]; !ok || got < 1 {
		t.Errorf("read_cache_hits_total = %v ok=%v, want ≥ 1 after repeated snapshot reads", got, ok)
	}
	if got, ok := series["ingest_snapshot_age_seconds"]; !ok || got != 0 {
		t.Errorf("ingest_snapshot_age_seconds = %v ok=%v, want 0 right after a flush", got, ok)
	}
	if got, ok := series["ingest_window_bins"]; !ok || got < 1 {
		t.Errorf("ingest_window_bins = %v ok=%v, want ≥ 1 once events landed in the rings", got, ok)
	}

	// Acceptance: ≥ 12 distinct series spanning ingest, HTTP and
	// process metrics on one scrape.
	fams := metricFamilies(series)
	if len(fams) < 12 {
		t.Errorf("only %d distinct metric families exposed, want ≥ 12: %v", len(fams), fams)
	}
	for _, prefix := range []string{"ingest_", "http_", "process_", "availd_"} {
		found := false
		for name := range fams {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* family in scrape", prefix)
		}
	}

	// The API listener exposes the same registry, and its own traffic
	// shows up in the HTTP series.
	apiSeries := scrapeMetrics(t, addr)
	if apiSeries["ingest_records_total"] != first {
		t.Errorf("API /metrics diverges from admin scrape: %v", apiSeries["ingest_records_total"])
	}
	// The scrape in flight counts itself only once it completes, so at
	// this point the series holds the push request.
	if v := apiSeries[`http_requests_total{code="2xx",handler="api"}`]; v < 1 {
		t.Errorf("http_requests_total{2xx,api} = %v, want ≥ 1 (the push)", v)
	}

	// /debug/vars serves the same series as flat JSON.
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", adminAddr))
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("vars decode: %v", err)
	}
	resp.Body.Close()
	if vars["ingest_records_total"] != first {
		t.Errorf("vars ingest_records_total = %v, want %d", vars["ingest_records_total"], first)
	}

	// pprof rides on the admin listener when enabled.
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", adminAddr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", resp.StatusCode)
	}

	// Keyed pushes: the same (source, seq) batch twice. The duplicate is
	// acked but never re-applied, and the dedup + epoch series expose the
	// split-brain-safety surface on every scrape.
	const keyed = 15
	pushKeyed := func() {
		t.Helper()
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := 0; i < keyed; i++ {
			rec := ingest.Record{SwarmID: 3000 + i, PeerID: 1, Seed: true, Online: true}
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
		req, err := http.NewRequest(http.MethodPost,
			fmt.Sprintf("http://%s/v1/ingest", addr), &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ingest.HeaderSource, "metrics-e2e")
		req.Header.Set(ingest.HeaderSeq, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("keyed push: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keyed push: status %d", resp.StatusCode)
		}
	}
	pushKeyed() // applies
	pushKeyed() // duplicate: acked, deduplicated
	e.Flush()
	series = scrapeMetrics(t, adminAddr)
	if got := series["ingest_records_total"]; got != first+keyed {
		t.Errorf("ingest_records_total after duplicate = %v, want %d (the dedup must not count records)", got, first+keyed)
	}
	if got := series["ingest_deduped_total"]; got != keyed {
		t.Errorf("ingest_deduped_total = %v, want %d", got, keyed)
	}
	if got := series["cluster_epoch"]; got != 1 {
		t.Errorf("cluster_epoch = %v, want 1 (never promoted, never fenced)", got)
	}
	if got, ok := series["cluster_fenced_requests_total"]; !ok || got != 0 {
		t.Errorf("cluster_fenced_requests_total = %v ok=%v, want 0 on a healthy node", got, ok)
	}

	// Push a second wave, then trigger the graceful drain; every acked
	// record must be counted in the final registry state.
	const second = 25
	push(2000, second)
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}
	reg := e.Registry()
	if v, _ := reg.Value("ingest_records_total"); v != first+keyed+second {
		t.Errorf("post-drain ingest_records_total = %v, want %d", v, first+keyed+second)
	}
	if got := reg.Sum("ingest_applied_total"); got != first+keyed+second {
		t.Errorf("post-drain applied = %v, want %d", got, first+keyed+second)
	}
	if m := e.Metrics(); m.Applied != first+keyed+second || m.Deduped != keyed {
		t.Errorf("post-drain snapshot applied=%d deduped=%d, want %d/%d", m.Applied, m.Deduped, first+keyed+second, keyed)
	}
}
