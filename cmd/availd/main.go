// Command availd is the online availability-analytics daemon: the
// serving front end of internal/ingest. It consumes monitor records —
// live over HTTP or replayed from archived JSONL campaigns — and
// answers the §2 availability and bundling questions continuously
// instead of after the campaign ends.
//
// Endpoints:
//
//	GET  /v1/swarm/{id}          one swarm's online stats
//	GET  /v1/summary             engine-wide aggregate + headline stats
//	GET  /v1/availability/cdf    availability quantiles + headline stats
//	                             (?q=0.25,0.5,… to pick quantiles)
//	GET  /v1/bundling/summary    per-category bundling counters
//	POST /v1/ingest              JSONL monitor records (ingest.Record)
//	GET  /metrics                registry scrape (Prometheus text)
//	GET  /debug/vars             same series as flat JSON
//	GET  /healthz                liveness
//
// With -admin the same observability surface (plus opt-in
// net/http/pprof via -pprof) is additionally served on a separate
// listener, so operators can firewall the API port without losing
// scrapes:
//
//	availd -listen :8647 -admin 127.0.0.1:8648 -pprof
//
// Replay mode streams an archived availability study (and optionally a
// census) through the full ingest path:
//
//	availd -replay data/availability_study.jsonl -census data/census.jsonl -verify
//
// With -verify it recomputes the offline internal/measure statistics in
// the same pass and checks the online results converge: per-swarm
// availabilities within 1e-9 (the arithmetic is shared and ordered
// identically, so they agree bitwise) and CDF quantiles equal to the
// offline sketch of the same geometry (each accurate to one sketch bin,
// ±1/4096, against the exact order statistics). A tolerance violation
// exits non-zero. Add -listen to keep serving after a replay.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"swarmavail/internal/cluster"
	"swarmavail/internal/ingest"
	"swarmavail/internal/measure"
	"swarmavail/internal/obs"
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
	"swarmavail/internal/wal"
)

// options carries the CLI configuration through run and serve; tests
// construct it directly (zero value = API listener only, no admin, no
// request logging).
type options struct {
	listen  string // API listen address; empty = no server
	admin   string // optional separate observability listener
	pprof   bool   // mount net/http/pprof on the admin listener
	shards  int
	batch   int
	replay  string
	census  string
	push    string
	writers int
	verify  bool
	logger  *slog.Logger // structured request + lifecycle log (nil = off)

	// Durability: with dataDir set the engine journals every accepted
	// batch to a WAL and recovers checkpoint + tail on boot.
	dataDir         string
	fsync           string        // WAL sync policy: batch, interval or off
	fsyncInterval   time.Duration // cadence under -fsync interval
	checkpointEvery time.Duration // periodic checkpoint cadence (0 = shutdown only)

	// Clustering: with follow set this process is a warm standby that
	// ships the leader's WAL into dataDir and serves only /v1/healthz,
	// /v1/follower/status and POST /v1/promote until promoted.
	follow     string        // leader base URL to follow
	followPoll time.Duration // WAL-shipping poll cadence
	drainGrace time.Duration // how long /v1/healthz advertises draining before shutdown

	// Binary streaming ingest: with ingestBin set a raw TCP listener
	// speaks the length-framed stream protocol (DESIGN.md §12) next to
	// the HTTP API. binReady, when non-nil, receives the bound address
	// once the listener is up (tests use ":0").
	ingestBin string
	binReady  chan<- net.Addr
}

func main() {
	var (
		opts     options
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.StringVar(&opts.listen, "listen", "", "HTTP listen address (e.g. :8647); empty = no server unless nothing to replay")
	flag.StringVar(&opts.admin, "admin", "", "separate admin listen address for /metrics, /debug/vars and pprof (e.g. 127.0.0.1:8648)")
	flag.BoolVar(&opts.pprof, "pprof", false, "enable net/http/pprof on the -admin listener")
	flag.IntVar(&opts.shards, "shards", 0, "ingest shards (0 = GOMAXPROCS)")
	flag.IntVar(&opts.batch, "batch", 0, "writer batch size (0 = default)")
	flag.StringVar(&opts.replay, "replay", "", "availability-study JSONL to stream through the engine")
	flag.StringVar(&opts.census, "census", "", "census JSONL to stream through the engine")
	flag.IntVar(&opts.writers, "writers", 4, "concurrent replay writers")
	flag.BoolVar(&opts.verify, "verify", false, "check online statistics against the offline analysis")
	flag.StringVar(&opts.push, "push", "", "push -replay records to a remote availd ingest URL (e.g. http://host:8647/v1/ingest) instead of the local engine")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durability directory for the WAL and checkpoints; empty = in-memory only")
	flag.StringVar(&opts.fsync, "fsync", "batch", "WAL fsync policy: batch (acked = durable), interval, or off")
	flag.DurationVar(&opts.fsyncInterval, "fsync-interval", 100*time.Millisecond, "fsync cadence under -fsync interval")
	flag.DurationVar(&opts.checkpointEvery, "checkpoint-every", 5*time.Minute, "periodic checkpoint cadence (0 = checkpoint only on shutdown)")
	flag.StringVar(&opts.follow, "follow", "", "run as a warm standby shipping this leader's WAL (e.g. http://host:8647); requires -listen and -data-dir")
	flag.DurationVar(&opts.followPoll, "follow-poll", 250*time.Millisecond, "WAL-shipping poll cadence under -follow")
	flag.DurationVar(&opts.drainGrace, "drain-grace", 0, "keep answering /v1/healthz as draining this long before shutdown, so load balancers drain first")
	flag.StringVar(&opts.ingestBin, "ingest-bin", "", "binary streaming ingest listen address (e.g. :8649); empty = HTTP ingest only")
	flag.Parse()

	opts.logger = obs.NewLogger(os.Stderr, "availd", obs.ParseLevel(*logLevel), *logJSON)

	// SIGINT/SIGTERM end this context; both the server and the push
	// client drain gracefully from it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "availd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opts options) error {
	if opts.push != "" {
		if opts.replay == "" {
			return fmt.Errorf("-push needs -replay (the records to send)")
		}
		return pushStudy(ctx, opts.push, opts.replay, opts.batch)
	}
	if opts.follow != "" {
		if opts.listen == "" || opts.dataDir == "" {
			return fmt.Errorf("-follow needs -listen and -data-dir")
		}
		return runFollower(ctx, opts, nil)
	}

	e, err := newEngineFromOpts(opts)
	if err != nil {
		return err
	}

	if opts.replay != "" {
		if err := replayStudy(e, opts.replay, opts.writers, opts.verify); err != nil {
			return err
		}
	}
	if opts.census != "" {
		if err := replayCensus(e, opts.census, opts.writers, opts.verify); err != nil {
			return err
		}
	}

	if opts.listen == "" {
		if opts.replay == "" && opts.census == "" {
			return fmt.Errorf("nothing to do: pass -listen and/or -replay/-census")
		}
		// Replay-only run: fold the ingested state into a checkpoint so
		// the next boot loads it instead of replaying the whole journal.
		if opts.dataDir != "" {
			e.Close()
			return finalCheckpoint(e, opts)
		}
		return nil
	}
	return serve(ctx, e, opts, nil, nil)
}

// newEngineFromOpts builds the engine: plain in-memory by default, or —
// with -data-dir — a durable one recovered from its checkpoint and WAL.
func newEngineFromOpts(opts options) (*ingest.Engine, error) {
	cfg := ingest.Config{Shards: opts.shards, BatchSize: opts.batch}
	if opts.dataDir == "" {
		return ingest.New(cfg), nil
	}
	policy, err := wal.ParseSyncPolicy(opts.fsync)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	e, rs, err := ingest.OpenDurable(cfg, ingest.DurabilityConfig{
		Dir:       opts.dataDir,
		Fsync:     policy,
		SyncEvery: opts.fsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("recover %s: %w", opts.dataDir, err)
	}
	fmt.Printf("availd: recovered %s in %v (checkpoint seq %d, %d swarms; replayed %d ops from %d frames)\n",
		opts.dataDir, time.Since(start).Round(time.Millisecond),
		rs.CheckpointSeq, rs.CheckpointSwarms, rs.ReplayedOps, rs.ReplayedFrames)
	if opts.logger != nil {
		opts.logger.Info("recovered",
			"dir", opts.dataDir,
			"fsync", policy.String(),
			"checkpoint_seq", rs.CheckpointSeq,
			"checkpoint_swarms", rs.CheckpointSwarms,
			"replayed_frames", rs.ReplayedFrames,
			"replayed_ops", rs.ReplayedOps,
			"truncated_bytes", rs.TruncatedBytes,
			"dropped_segments", rs.DroppedSegments,
			"bad_frame_seq", rs.BadFrameSeq,
			"elapsed", time.Since(start))
		if rs.TruncatedBytes > 0 || rs.DroppedSegments > 0 || rs.BadFrameSeq != 0 {
			opts.logger.Warn("journal repaired on open",
				"truncated_bytes", rs.TruncatedBytes,
				"dropped_segments", rs.DroppedSegments,
				"bad_frame_seq", rs.BadFrameSeq)
		}
	}
	return e, nil
}

// finalCheckpoint captures the (already drained) engine's state on the
// way out. Failure is reported but not fatal: the WAL alone recovers
// the same state, just more slowly.
func finalCheckpoint(e *ingest.Engine, opts options) error {
	cs, err := e.Checkpoint()
	if err != nil {
		fmt.Fprintf(os.Stderr, "availd: final checkpoint: %v (journal remains authoritative)\n", err)
		if opts.logger != nil {
			opts.logger.Error("final checkpoint failed", "err", err)
		}
		return nil
	}
	if !cs.Skipped {
		fmt.Printf("availd: checkpoint seq %d written (%d swarms, %d bytes, %v)\n",
			cs.Seq, cs.Swarms, cs.Bytes, cs.Duration.Round(time.Millisecond))
	}
	if opts.logger != nil {
		opts.logger.Info("final checkpoint", "seq", cs.Seq, "swarms", cs.Swarms,
			"bytes", cs.Bytes, "skipped", cs.Skipped, "duration", cs.Duration)
	}
	return nil
}

// newHTTPServer applies the shared slow-client protections: a peer that
// stalls mid-headers or mid-body cannot pin a connection goroutine
// forever.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// serve runs the hardened HTTP front end until ctx ends, then shuts
// down gracefully: stop accepting, finish in-flight requests, drain the
// ingest engine. Every record acknowledged to a client before the
// signal is applied before exit. If opts.admin is set, the
// observability surface (metrics, vars, opt-in pprof) is additionally
// served on its own listener. If ready/adminReady are non-nil they
// receive the bound addresses once the listeners are up (tests use
// ":0").
func serve(ctx context.Context, e *ingest.Engine, opts options, ready, adminReady chan<- net.Addr) error {
	reg := e.Registry()
	obs.RegisterProcessMetrics(reg)
	registerSummaryMetrics(reg, e)

	// The epoch gate is opened even without a data dir (memory-only) so
	// the cluster_epoch/fencing series exist on every configuration and
	// a stamped request fences an in-memory node the same way.
	gate, err := cluster.OpenEpochGate(opts.dataDir, reg, func(format string, args ...any) {
		if opts.logger != nil {
			opts.logger.Warn(fmt.Sprintf(format, args...))
		}
	})
	if err != nil {
		return err
	}
	s := &server{engine: e, dataDir: opts.dataDir, gate: gate}
	h := obs.InstrumentHandler(reg, "api", s.handler())
	h = obs.LogRequests(opts.logger, h)

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	srv := newHTTPServer(h)
	fmt.Printf("availd: serving on %s (%d shards)\n", ln.Addr(), e.Shards())
	if opts.logger != nil {
		opts.logger.Info("serving", "addr", ln.Addr().String(), "shards", e.Shards())
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	errc := make(chan error, 3)
	go func() { errc <- srv.Serve(ln) }()

	var adminSrv *http.Server
	if opts.admin != "" {
		adminLn, err := net.Listen("tcp", opts.admin)
		if err != nil {
			srv.Close()
			ln.Close()
			return err
		}
		adminSrv = newHTTPServer(obs.LogRequests(opts.logger, obs.AdminHandler(reg, opts.pprof)))
		fmt.Printf("availd: admin on %s (pprof %v)\n", adminLn.Addr(), opts.pprof)
		if opts.logger != nil {
			opts.logger.Info("admin listener up", "addr", adminLn.Addr().String(), "pprof", opts.pprof)
		}
		if adminReady != nil {
			adminReady <- adminLn.Addr()
		}
		go func() { errc <- adminSrv.Serve(adminLn) }()
	}

	// Binary streaming ingest listener: the same engine behind a raw TCP
	// protocol whose frames are journal frames (DESIGN.md §12).
	var (
		binLn net.Listener
		binSS *ingest.StreamServer
	)
	if opts.ingestBin != "" {
		binLn, err = net.Listen("tcp", opts.ingestBin)
		if err != nil {
			if adminSrv != nil {
				adminSrv.Close()
			}
			srv.Close()
			ln.Close()
			return err
		}
		binSS = ingest.NewStreamServer(e, func(format string, args ...any) {
			if opts.logger != nil {
				opts.logger.Warn(fmt.Sprintf(format, args...))
			}
		})
		fmt.Printf("availd: binary ingest on %s\n", binLn.Addr())
		if opts.logger != nil {
			opts.logger.Info("binary ingest listener up", "addr", binLn.Addr().String())
		}
		if opts.binReady != nil {
			opts.binReady <- binLn.Addr()
		}
		go func() { errc <- binSS.Serve(binLn) }()
	}

	// Periodic checkpoints bound recovery time: boot cost is one
	// checkpoint load plus at most checkpointEvery worth of WAL replay.
	var ckptWG sync.WaitGroup
	if opts.dataDir != "" && opts.checkpointEvery > 0 {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			t := time.NewTicker(opts.checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					cs, err := e.Checkpoint()
					switch {
					case err != nil:
						fmt.Fprintf(os.Stderr, "availd: checkpoint: %v\n", err)
						if opts.logger != nil {
							opts.logger.Error("checkpoint failed", "err", err)
						}
					case !cs.Skipped && opts.logger != nil:
						opts.logger.Info("checkpoint", "seq", cs.Seq, "swarms", cs.Swarms,
							"bytes", cs.Bytes, "duration", cs.Duration)
					}
				}
			}
		}()
	}

	select {
	case err := <-errc:
		if adminSrv != nil {
			adminSrv.Close()
		}
		if binLn != nil {
			binLn.Close()
			binSS.Close()
		}
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("availd: signal received, draining")
	if opts.logger != nil {
		opts.logger.Info("signal received, draining")
	}
	// Flip readiness before closing anything: /v1/healthz answers 503
	// draining while the listener is still up, and the grace period
	// gives health-checking gateways time to observe the transition and
	// stop routing here before connections start failing.
	s.draining.Store(true)
	if opts.drainGrace > 0 {
		time.Sleep(opts.drainGrace)
	}
	if binLn != nil {
		// Stop the binary stream first: closing the listener and the
		// active connections cuts every stream at a frame boundary —
		// acknowledged frames are in the engine, clients resend the rest
		// on reconnect (keyed frames make that exactly-once).
		binLn.Close()
		binSS.Close()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// In-flight requests overran the grace period; the engine still
		// drains what they enqueued (late writes get ErrClosed → 503).
		fmt.Fprintf(os.Stderr, "availd: shutdown: %v\n", err)
	}
	if adminSrv != nil {
		// The admin listener stays up through the API drain so a final
		// scrape can observe the shutdown, then closes with it.
		if err := adminSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "availd: admin shutdown: %v\n", err)
		}
	}
	ckptWG.Wait() // no checkpoint racing the drain
	e.Close()
	m := e.Metrics()
	fmt.Printf("availd: drained, %d records applied\n", m.Applied)
	if opts.logger != nil {
		opts.logger.Info("drained", "applied", m.Applied)
	}
	if opts.dataDir != "" {
		// The drained final state — every record acknowledged before the
		// signal — is folded into a shutdown checkpoint, so the next
		// boot loads it without replaying the journal.
		return finalCheckpoint(e, opts)
	}
	return nil
}

// registerSummaryMetrics exposes the engine's analytical state —
// swarm/peer population and busy periods — as gauges. They read the
// engine's lock-free snapshot (never the shard queues), and
// back-to-back callbacks within one scrape hit the engine's memoized
// merge, so scraping costs the write path nothing.
func registerSummaryMetrics(reg *obs.Registry, e *ingest.Engine) {
	get := func() *ingest.Summary { return e.Snapshot().Summary }
	reg.GaugeFunc("availd_swarms", func() float64 { return float64(get().Swarms) })
	reg.GaugeFunc("availd_study_swarms", func() float64 { return float64(get().StudySwarms) })
	reg.GaugeFunc("availd_census_swarms", func() float64 { return float64(get().CensusSwarms) })
	reg.GaugeFunc("availd_seeds_online", func() float64 { return float64(get().SeedsOnline) })
	reg.GaugeFunc("availd_leechers_online", func() float64 { return float64(get().LeechersOnline) })
	reg.GaugeFunc("availd_busy_periods", func() float64 { return float64(get().BusyPeriods) })
}

// pushStudy is replay-over-network: it streams an archived availability
// study's monitor records to a remote availd's /v1/ingest through the
// retrying HTTP client, riding out transient outages with backoff. The
// trace file is decoded in parallel so the sender, not JSON parsing, is
// the bottleneck.
func pushStudy(ctx context.Context, url, path string, batch int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		URL: url,
		Logf: func(format string, args ...any) {
			fmt.Printf("availd: "+format+"\n", args...)
		},
	})
	sc := trace.NewParallelTraceScanner(f, 0)
	defer sc.Close()
	start := time.Now()
	st, err := c.PushTraces(ctx, sc, batch)
	if err != nil {
		return err
	}
	fmt.Printf("pushed %d records from %d swarms to %s in %v (%d retries)\n",
		st.Records, st.Swarms, url, time.Since(start).Round(time.Millisecond), c.Retries())
	return nil
}

// offlineRef accumulates the offline reference statistics during the
// replay scan, so verification needs no second pass over the file.
type offlineRef struct {
	avail      map[int][2]float64
	firstMonth *stats.QuantileSketch
	full       *stats.QuantileSketch
	fm, fl     []float64
}

func replayStudy(e *ingest.Engine, path string, writers int, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var ref *offlineRef
	// Parallel decode: order-preserving, so the verify path's
	// record-by-record offline comparison still sees the file order.
	sc := trace.NewParallelTraceScanner(f, 0)
	defer sc.Close()
	start := time.Now()
	var n int
	if !verify {
		n, err = ingest.ReplayTraces(e, sc, writers)
	} else {
		ref = &offlineRef{
			avail:      make(map[int][2]float64),
			firstMonth: stats.NewAvailabilitySketch(),
			full:       stats.NewAvailabilitySketch(),
		}
		// Feed the engine through one writer per scanned record while
		// computing the offline answers from the same record.
		w := e.NewWriter()
		for sc.Scan() {
			t := sc.Record()
			for _, op := range ingest.TraceOps(t) {
				w.Put(op)
			}
			fm, full := measure.Availability(t)
			ref.avail[t.Meta.ID] = [2]float64{fm, full}
			ref.firstMonth.Add(fm)
			ref.full.Add(full)
			ref.fm = append(ref.fm, fm)
			ref.fl = append(ref.fl, full)
			n++
		}
		w.Flush()
		e.Flush()
		err = sc.Err()
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	m := e.Metrics()
	fmt.Printf("replayed %d swarms (%d records) in %v — %.0f records/s, batch p50 latency %s\n",
		n, m.Applied, elapsed.Round(time.Millisecond),
		float64(m.Applied)/elapsed.Seconds(), fmtSeconds(m.LatencyP50))

	sum := e.Summary()
	h := sum.Headlines()
	fmt.Printf("online headlines: %.1f%% fully seeded through month 1, %.1f%% available ≤20%% of the trace\n",
		100*h.FullyAvailableFirstMonth, 100*h.MostlyUnavailableOverall)
	fmt.Println("online availability quantiles (first month / whole trace):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		fmt.Printf("  p%-3.0f  %.3f / %.3f\n", q*100, sum.FirstMonth.Quantile(q), sum.Full.Quantile(q))
	}

	if verify {
		return verifyStudy(e, sum, ref)
	}
	return nil
}

func verifyStudy(e *ingest.Engine, sum *ingest.Summary, ref *offlineRef) error {
	var maxDelta float64
	for id, want := range ref.avail {
		st, ok := e.Swarm(id)
		if !ok {
			return fmt.Errorf("verify: swarm %d missing from online state", id)
		}
		d := math.Max(math.Abs(st.FirstMonth-want[0]), math.Abs(st.Full-want[1]))
		if d > maxDelta {
			maxDelta = d
		}
	}
	const tol = 1e-9
	fmt.Printf("verify: %d swarms, max |online − offline| availability = %.3g (tolerance %g)\n",
		len(ref.avail), maxDelta, tol)
	if maxDelta > tol {
		return fmt.Errorf("verify: per-swarm availability diverged by %g > %g", maxDelta, tol)
	}

	// Online sketches must equal the offline single-pass sketches, and
	// both must sit within one bin of the exact order statistics.
	sort.Float64s(ref.fm)
	sort.Float64s(ref.fl)
	res := sum.FirstMonth.Resolution()
	var maxQ float64
	for _, q := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		if sum.FirstMonth.Quantile(q) != ref.firstMonth.Quantile(q) ||
			sum.Full.Quantile(q) != ref.full.Quantile(q) {
			return fmt.Errorf("verify: online sketch quantile q=%v diverged from offline sketch", q)
		}
		rank := int(math.Ceil(q * float64(len(ref.fm))))
		dFM := math.Abs(sum.FirstMonth.Quantile(q) - ref.fm[rank-1])
		dFL := math.Abs(sum.Full.Quantile(q) - ref.fl[rank-1])
		maxQ = math.Max(maxQ, math.Max(dFM, dFL))
	}
	fmt.Printf("verify: CDF quantiles identical to offline sketch; max |sketch − exact order stat| = %.3g (tolerance %.3g)\n",
		maxQ, res)
	if maxQ > res+1e-12 {
		return fmt.Errorf("verify: sketch quantile error %g exceeds resolution %g", maxQ, res)
	}
	fmt.Println("verify: OK")
	return nil
}

func replayCensus(e *ingest.Engine, path string, writers int, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()

	var offline map[trace.Category]measure.BundlingExtent
	var n int
	if !verify {
		sc := trace.NewParallelSnapshotScanner(f, 0)
		defer sc.Close()
		n, err = ingest.ReplaySnapshots(e, sc, writers)
		if err != nil {
			return err
		}
	} else {
		// Stream both pipelines from one scan; the offline extent uses
		// the identical classifier on each record.
		ext := map[trace.Category]measure.BundlingExtent{}
		w := e.NewWriter()
		sc := trace.NewParallelSnapshotScanner(f, 0)
		defer sc.Close()
		for sc.Scan() {
			s := sc.Record()
			w.ObserveCensus(s)
			acc := ext[s.Meta.Category]
			acc.Category = s.Meta.Category
			acc.Swarms++
			if measure.IsBundle(s.Meta) {
				acc.Bundles++
			}
			if s.Meta.Category == trace.Books && measure.IsCollection(s.Meta) {
				acc.Collections++
			}
			ext[s.Meta.Category] = acc
			n++
		}
		w.Flush()
		e.Flush()
		if err := sc.Err(); err != nil {
			return err
		}
		offline = ext
	}
	fmt.Printf("replayed %d census snapshots in %v\n", n, time.Since(start).Round(time.Millisecond))

	sum := e.Summary()
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		cc := sum.Categories[cat]
		fmt.Printf("  %-6s %8d swarms, %6d bundles, %d collections, %.1f%% seedless\n",
			cat, cc.Swarms, cc.Bundles, cc.Collections,
			100*cc.Compare(cat).SeedlessAll)
		if offline != nil {
			if got := cc.Extent(cat); got != offline[cat] {
				return fmt.Errorf("verify: %v bundling counters diverged: online %+v offline %+v",
					cat, got, offline[cat])
			}
		}
	}
	if offline != nil {
		fmt.Println("verify: bundling counters identical to offline analysis")
	}
	return nil
}

func fmtSeconds(s float64) string {
	if s <= 0 {
		return "n/a"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// server wires the engine into the HTTP API.
type server struct {
	engine *ingest.Engine
	// dataDir gates the WAL-shipping endpoints: only a durable node has
	// a journal a follower can replicate.
	dataDir string
	// gate, when non-nil, wraps the API in cluster epoch fencing: every
	// response carries this node's slot epoch, and requests from a newer
	// era demote the node (see cluster.EpochGate).
	gate *cluster.EpochGate
	// draining flips /v1/healthz to 503 ahead of shutdown so the
	// gateway's health checks stop routing here before the listener
	// closes.
	draining atomic.Bool
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/swarm/{id}", s.handleSwarm)
	mux.HandleFunc("GET /v1/swarm/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /v1/summary", s.handleSummary)
	mux.HandleFunc("GET /v1/availability/cdf", s.handleCDF)
	mux.HandleFunc("GET /v1/availability/window", s.handleWindow)
	mux.HandleFunc("GET /v1/bundling/summary", s.handleBundling)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("GET /v1/window/state", s.handleWindowState)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	if s.dataDir != "" && s.engine.WAL() != nil {
		// WAL shipping: a follower replicates this node's journal and
		// checkpoints from these routes.
		(&cluster.WALServer{Log: s.engine.WAL(), Dir: s.dataDir}).Register(mux)
	}
	// The observability surface rides on the API listener too, so a
	// bare deployment (no -admin) still scrapes. Everything is served
	// straight from the engine's registry: the ingest pipeline writes
	// its own series there, and registerSummaryMetrics adds the
	// analytical gauges — nothing is copied field by field here.
	mux.Handle("GET /metrics", obs.MetricsHandler(s.engine.Registry()))
	mux.Handle("GET /debug/vars", obs.VarsHandler(s.engine.Registry()))
	if s.gate != nil {
		return s.gate.Middleware(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) { ingest.WriteJSON(w, v) }

// handleHealthz is the readiness probe: 200 "serving" exactly when the
// node can take traffic — recovery finished (the listener only comes up
// after OpenDurable returns) and not yet draining for shutdown. The
// cluster gateway's failure detector keys off this.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"state":"draining"}`)
		return
	}
	if s.gate != nil && s.gate.Fenced() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"state":"fenced"}`)
		return
	}
	writeJSON(w, map[string]string{"state": "serving"})
}

// wantConsistent reports whether the request opted out of the lock-free
// snapshot path with ?consistent=1 — a full queue barrier that observes
// everything submitted before the call, at the cost of touching every
// shard queue.
func wantConsistent(r *http.Request) bool {
	v := r.URL.Query().Get("consistent")
	return v != "" && v != "0"
}

// summaryView resolves a read request to a Summary: the engine's
// epoch-tagged lock-free snapshot by default (at most SnapshotMaxAge
// stale, served without touching the shard queues), or a queue-barrier
// read under ?consistent=1. Barrier answers carry no ETag — they are
// read-your-writes by definition and must not validate a cache.
func (s *server) summaryView(r *http.Request) (*ingest.Summary, string) {
	if wantConsistent(r) {
		return s.engine.Summary(), ""
	}
	snap := s.engine.Snapshot()
	return snap.Summary, snap.ETag
}

// windowView is summaryView for the windowed aggregate.
func (s *server) windowView(r *http.Request) (*ingest.WindowState, string) {
	if wantConsistent(r) {
		return s.engine.Window(), ""
	}
	snap := s.engine.Snapshot()
	return snap.Window, snap.ETag
}

// handleState serves the summary's full mergeable wire form — the
// cluster gateway's scatter-gather payload.
func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	sum, etag := s.summaryView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteState(w, sum)
}

// handleWindowState serves the windowed aggregate's mergeable wire form
// — the gateway's scatter-gather payload for windowed queries.
func (s *server) handleWindowState(w http.ResponseWriter, r *http.Request) {
	win, etag := s.windowView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	writeJSON(w, win)
}

func (s *server) handleSwarm(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad swarm id", http.StatusBadRequest)
		return
	}
	var st ingest.SwarmStats
	var ok bool
	if wantConsistent(r) {
		st, ok = s.engine.Swarm(id)
	} else {
		st, ok = s.engine.SwarmSnapshot(id)
	}
	if !ok {
		http.Error(w, "unknown swarm", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// handleTimeline serves one swarm's windowed history: per-bin
// availability and busy-period starts at fine resolution plus the
// downsampled tail.
func (s *server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad swarm id", http.StatusBadRequest)
		return
	}
	win, ok := s.engine.Timeline(id)
	if !ok {
		http.Error(w, "unknown swarm", http.StatusNotFound)
		return
	}
	writeJSON(w, ingest.NewTimelineResponse(id, win))
}

// handleSummary serves the merged engine-wide aggregate: population
// gauges, headline §2 statistics, and event counters. The rendering
// lives in internal/ingest's shared httpapi so the cluster gateway's
// merged answer is byte-identical to this one.
func (s *server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum, etag := s.summaryView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteSummary(w, sum)
}

func (s *server) handleCDF(w http.ResponseWriter, r *http.Request) {
	qs, err := ingest.ParseQuantiles(r.URL.Query().Get("q"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sum, etag := s.summaryView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteCDF(w, sum, qs)
}

// handleWindow serves the trailing ?d= window of time-binned
// availability (default 24h): per-bin availability fractions,
// busy-period starts and event counts, downsampled when the span
// exceeds the fine ring.
func (s *server) handleWindow(w http.ResponseWriter, r *http.Request) {
	days, err := ingest.ParseWindowDays(r.URL.Query().Get("d"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	win, etag := s.windowView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	ingest.WriteWindow(w, win, days)
}

type bundlingCategory struct {
	Category             string  `json:"category"`
	Swarms               int     `json:"swarms"`
	Bundles              int     `json:"bundles"`
	BundleFraction       float64 `json:"bundle_fraction"`
	Collections          int     `json:"collections"`
	SeedlessAll          float64 `json:"seedless_all"`
	SeedlessBundles      float64 `json:"seedless_bundles"`
	MeanDownloadsAll     float64 `json:"mean_downloads_all"`
	MeanDownloadsBundles float64 `json:"mean_downloads_bundles"`
}

func (s *server) handleBundling(w http.ResponseWriter, r *http.Request) {
	sum, etag := s.summaryView(r)
	if ingest.NotModified(w, r, etag) {
		return
	}
	cats := make([]trace.Category, 0, len(sum.Categories))
	for cat := range sum.Categories {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	out := struct {
		CensusSwarms int                `json:"census_swarms"`
		Categories   []bundlingCategory `json:"categories"`
	}{CensusSwarms: sum.CensusSwarms}
	for _, cat := range cats {
		cc := sum.Categories[cat]
		cmp := cc.Compare(cat)
		out.Categories = append(out.Categories, bundlingCategory{
			Category:             cat.String(),
			Swarms:               cc.Swarms,
			Bundles:              cc.Bundles,
			BundleFraction:       cc.Extent(cat).BundleFraction(),
			Collections:          cc.Collections,
			SeedlessAll:          cmp.SeedlessAll,
			SeedlessBundles:      cmp.SeedlessBundles,
			MeanDownloadsAll:     cmp.MeanDownloadsAll,
			MeanDownloadsBundles: cmp.MeanDownloadsBundles,
		})
	}
	writeJSON(w, out)
}

// maxIngestBody bounds one /v1/ingest request (32 MiB ≈ 300k records);
// push clients batch far below this.
const maxIngestBody = 32 << 20

// parallelIngestBody is the body size from which /v1/ingest decodes
// with the worker-pool scanner. Below it the pool's goroutine setup
// costs more than it buys; above it JSON decode is the endpoint's CPU
// bill and fans out across cores.
const parallelIngestBody = 1 << 20

// handleIngest accepts JSONL ingest.Record lines. The whole body is
// parsed before anything touches the engine, so a request that fails —
// oversized (413), malformed (400), or racing shutdown (503) — leaves
// the engine's state exactly as it was: no partial batch is ever
// applied for a request the client was told failed. The 200
// acknowledgement means every record is in the engine's queues (and,
// under -data-dir with the default fsync policy, on stable storage) —
// state a graceful shutdown drains before exiting.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Idempotency key headers select the exactly-once path: a retried
	// batch whose first attempt was journaled (its ack lost in flight) is
	// acknowledged again without re-applying.
	source := r.Header.Get(ingest.HeaderSource)
	var seq uint64
	if source != "" {
		var err error
		seq, err = strconv.ParseUint(r.Header.Get(ingest.HeaderSeq), 10, 64)
		if err != nil || seq == 0 {
			http.Error(w, "bad "+ingest.HeaderSeq+" header", http.StatusBadRequest)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	var src trace.Source[ingest.Record]
	if r.ContentLength >= parallelIngestBody {
		sc := trace.NewParallelScanner[ingest.Record](r.Body, 0)
		defer sc.Close()
		src = sc
	} else {
		src = trace.NewScanner[ingest.Record](r.Body)
	}
	var ops []ingest.Op
	for src.Scan() {
		ops = append(ops, ingest.EventOp(src.Record()))
	}
	if err := src.Err(); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("bad record %d: %v", len(ops), err), http.StatusBadRequest)
		return
	}
	if source != "" {
		// applied=false means the batch was a duplicate: still a full
		// acknowledgement (the records are journaled and applied — once).
		if _, err := s.engine.SubmitKeyed(source, seq, ops); err != nil {
			ingestUnavailable(w, err)
			return
		}
	} else if err := s.engine.Submit(ops); err != nil {
		ingestUnavailable(w, err)
		return
	}
	writeJSON(w, map[string]int{"accepted": len(ops)})
}

// ingestUnavailable reports a write the draining engine refused; the
// retrying client treats 503 as temporary and replays the batch
// elsewhere/later, preserving at-least-once delivery.
func ingestUnavailable(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ingest.ErrClosed) {
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}
