// Command availd is the online availability-analytics daemon: the
// serving front end of internal/ingest. It consumes monitor records —
// live over HTTP or replayed from archived JSONL campaigns — and
// answers the §2 availability and bundling questions continuously
// instead of after the campaign ends.
//
// Endpoints:
//
//	GET  /v1/swarm/{id}          one swarm's online stats
//	GET  /v1/availability/cdf    availability quantiles + headline stats
//	                             (?q=0.25,0.5,… to pick quantiles)
//	GET  /v1/bundling/summary    per-category bundling counters
//	POST /v1/ingest              JSONL monitor records (ingest.Record)
//	GET  /metrics                operational counters (Prometheus text)
//	GET  /healthz                liveness
//
// Replay mode streams an archived availability study (and optionally a
// census) through the full ingest path:
//
//	availd -replay data/availability_study.jsonl -census data/census.jsonl -verify
//
// With -verify it recomputes the offline internal/measure statistics in
// the same pass and checks the online results converge: per-swarm
// availabilities within 1e-9 (the arithmetic is shared and ordered
// identically, so they agree bitwise) and CDF quantiles equal to the
// offline sketch of the same geometry (each accurate to one sketch bin,
// ±1/4096, against the exact order statistics). A tolerance violation
// exits non-zero. Add -listen to keep serving after a replay.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/measure"
	"swarmavail/internal/stats"
	"swarmavail/internal/trace"
)

func main() {
	var (
		listen  = flag.String("listen", "", "HTTP listen address (e.g. :8647); empty = no server unless nothing to replay")
		shards  = flag.Int("shards", 0, "ingest shards (0 = GOMAXPROCS)")
		batch   = flag.Int("batch", 0, "writer batch size (0 = default)")
		replay  = flag.String("replay", "", "availability-study JSONL to stream through the engine")
		census  = flag.String("census", "", "census JSONL to stream through the engine")
		writers = flag.Int("writers", 4, "concurrent replay writers")
		verify  = flag.Bool("verify", false, "check online statistics against the offline analysis")
		push    = flag.String("push", "", "push -replay records to a remote availd ingest URL (e.g. http://host:8647/v1/ingest) instead of the local engine")
	)
	flag.Parse()

	// SIGINT/SIGTERM end this context; both the server and the push
	// client drain gracefully from it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *listen, *shards, *batch, *replay, *census, *writers, *verify, *push); err != nil {
		fmt.Fprintf(os.Stderr, "availd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen string, shards, batch int, replay, census string, writers int, verify bool, push string) error {
	if push != "" {
		if replay == "" {
			return fmt.Errorf("-push needs -replay (the records to send)")
		}
		return pushStudy(ctx, push, replay, batch)
	}

	e := ingest.New(ingest.Config{Shards: shards, BatchSize: batch})

	if replay != "" {
		if err := replayStudy(e, replay, writers, verify); err != nil {
			return err
		}
	}
	if census != "" {
		if err := replayCensus(e, census, writers, verify); err != nil {
			return err
		}
	}

	if listen == "" {
		if replay == "" && census == "" {
			return fmt.Errorf("nothing to do: pass -listen and/or -replay/-census")
		}
		return nil
	}
	return serve(ctx, e, listen, nil)
}

// serve runs the hardened HTTP front end until ctx ends, then shuts
// down gracefully: stop accepting, finish in-flight requests, drain the
// ingest engine. Every record acknowledged to a client before the
// signal is applied before exit. If ready is non-nil it receives the
// bound address once the listener is up (tests use ":0").
func serve(ctx context.Context, e *ingest.Engine, listen string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: (&server{engine: e}).handler(),
		// Slow-client protection: a peer that stalls mid-headers or
		// mid-body cannot pin a connection goroutine forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	fmt.Printf("availd: serving on %s (%d shards)\n", ln.Addr(), e.Shards())
	if ready != nil {
		ready <- ln.Addr()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("availd: signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// In-flight requests overran the grace period; the engine still
		// drains what they enqueued (late writes get ErrClosed → 503).
		fmt.Fprintf(os.Stderr, "availd: shutdown: %v\n", err)
	}
	e.Close()
	m := e.Metrics()
	fmt.Printf("availd: drained, %d records applied\n", m.Applied)
	return nil
}

// pushStudy is replay-over-network: it streams an archived availability
// study's monitor records to a remote availd's /v1/ingest through the
// retrying HTTP client, riding out transient outages with backoff.
func pushStudy(ctx context.Context, url, path string, batch int) error {
	if batch <= 0 {
		batch = 256
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		URL: url,
		Logf: func(format string, args ...any) {
			fmt.Printf("availd: "+format+"\n", args...)
		},
	})
	sc := trace.NewTraceScanner(f)
	buf := make([]ingest.Record, 0, batch)
	var sent, swarms int
	start := time.Now()
	flush := func() error {
		if err := c.Push(ctx, buf); err != nil {
			return err
		}
		sent += len(buf)
		buf = buf[:0]
		return nil
	}
	for sc.Scan() {
		t := sc.Record()
		swarms++
		for _, op := range ingest.TraceOps(t) {
			rec, ok := op.EventRecord()
			if !ok {
				continue // registrations travel only on the local path
			}
			buf = append(buf, rec)
			if len(buf) >= batch {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("pushed %d records from %d swarms to %s in %v (%d retries)\n",
		sent, swarms, url, time.Since(start).Round(time.Millisecond), c.Retries())
	return nil
}

// offlineRef accumulates the offline reference statistics during the
// replay scan, so verification needs no second pass over the file.
type offlineRef struct {
	avail      map[int][2]float64
	firstMonth *stats.QuantileSketch
	full       *stats.QuantileSketch
	fm, fl     []float64
}

func replayStudy(e *ingest.Engine, path string, writers int, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var ref *offlineRef
	sc := trace.NewTraceScanner(f)
	start := time.Now()
	var n int
	if !verify {
		n, err = ingest.ReplayTraces(e, sc, writers)
	} else {
		ref = &offlineRef{
			avail:      make(map[int][2]float64),
			firstMonth: stats.NewAvailabilitySketch(),
			full:       stats.NewAvailabilitySketch(),
		}
		// Feed the engine through one writer per scanned record while
		// computing the offline answers from the same record.
		w := e.NewWriter()
		for sc.Scan() {
			t := sc.Record()
			for _, op := range ingest.TraceOps(t) {
				w.Put(op)
			}
			fm, full := measure.Availability(t)
			ref.avail[t.Meta.ID] = [2]float64{fm, full}
			ref.firstMonth.Add(fm)
			ref.full.Add(full)
			ref.fm = append(ref.fm, fm)
			ref.fl = append(ref.fl, full)
			n++
		}
		w.Flush()
		e.Flush()
		err = sc.Err()
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	m := e.Metrics()
	fmt.Printf("replayed %d swarms (%d records) in %v — %.0f records/s, batch p50 latency %s\n",
		n, m.Applied, elapsed.Round(time.Millisecond),
		float64(m.Applied)/elapsed.Seconds(), fmtSeconds(m.LatencyP50))

	sum := e.Summary()
	h := sum.Headlines()
	fmt.Printf("online headlines: %.1f%% fully seeded through month 1, %.1f%% available ≤20%% of the trace\n",
		100*h.FullyAvailableFirstMonth, 100*h.MostlyUnavailableOverall)
	fmt.Println("online availability quantiles (first month / whole trace):")
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
		fmt.Printf("  p%-3.0f  %.3f / %.3f\n", q*100, sum.FirstMonth.Quantile(q), sum.Full.Quantile(q))
	}

	if verify {
		return verifyStudy(e, sum, ref)
	}
	return nil
}

func verifyStudy(e *ingest.Engine, sum *ingest.Summary, ref *offlineRef) error {
	var maxDelta float64
	for id, want := range ref.avail {
		st, ok := e.Swarm(id)
		if !ok {
			return fmt.Errorf("verify: swarm %d missing from online state", id)
		}
		d := math.Max(math.Abs(st.FirstMonth-want[0]), math.Abs(st.Full-want[1]))
		if d > maxDelta {
			maxDelta = d
		}
	}
	const tol = 1e-9
	fmt.Printf("verify: %d swarms, max |online − offline| availability = %.3g (tolerance %g)\n",
		len(ref.avail), maxDelta, tol)
	if maxDelta > tol {
		return fmt.Errorf("verify: per-swarm availability diverged by %g > %g", maxDelta, tol)
	}

	// Online sketches must equal the offline single-pass sketches, and
	// both must sit within one bin of the exact order statistics.
	sort.Float64s(ref.fm)
	sort.Float64s(ref.fl)
	res := sum.FirstMonth.Resolution()
	var maxQ float64
	for _, q := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		if sum.FirstMonth.Quantile(q) != ref.firstMonth.Quantile(q) ||
			sum.Full.Quantile(q) != ref.full.Quantile(q) {
			return fmt.Errorf("verify: online sketch quantile q=%v diverged from offline sketch", q)
		}
		rank := int(math.Ceil(q * float64(len(ref.fm))))
		dFM := math.Abs(sum.FirstMonth.Quantile(q) - ref.fm[rank-1])
		dFL := math.Abs(sum.Full.Quantile(q) - ref.fl[rank-1])
		maxQ = math.Max(maxQ, math.Max(dFM, dFL))
	}
	fmt.Printf("verify: CDF quantiles identical to offline sketch; max |sketch − exact order stat| = %.3g (tolerance %.3g)\n",
		maxQ, res)
	if maxQ > res+1e-12 {
		return fmt.Errorf("verify: sketch quantile error %g exceeds resolution %g", maxQ, res)
	}
	fmt.Println("verify: OK")
	return nil
}

func replayCensus(e *ingest.Engine, path string, writers int, verify bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()

	var offline map[trace.Category]measure.BundlingExtent
	var n int
	if !verify {
		n, err = ingest.ReplaySnapshots(e, trace.NewSnapshotScanner(f), writers)
		if err != nil {
			return err
		}
	} else {
		// Stream both pipelines from one scan; the offline extent uses
		// the identical classifier on each record.
		ext := map[trace.Category]measure.BundlingExtent{}
		w := e.NewWriter()
		sc := trace.NewSnapshotScanner(f)
		for sc.Scan() {
			s := sc.Record()
			w.ObserveCensus(s)
			acc := ext[s.Meta.Category]
			acc.Category = s.Meta.Category
			acc.Swarms++
			if measure.IsBundle(s.Meta) {
				acc.Bundles++
			}
			if s.Meta.Category == trace.Books && measure.IsCollection(s.Meta) {
				acc.Collections++
			}
			ext[s.Meta.Category] = acc
			n++
		}
		w.Flush()
		e.Flush()
		if err := sc.Err(); err != nil {
			return err
		}
		offline = ext
	}
	fmt.Printf("replayed %d census snapshots in %v\n", n, time.Since(start).Round(time.Millisecond))

	sum := e.Summary()
	for _, cat := range []trace.Category{trace.Music, trace.TV, trace.Books} {
		cc := sum.Categories[cat]
		fmt.Printf("  %-6s %8d swarms, %6d bundles, %d collections, %.1f%% seedless\n",
			cat, cc.Swarms, cc.Bundles, cc.Collections,
			100*cc.Compare(cat).SeedlessAll)
		if offline != nil {
			if got := cc.Extent(cat); got != offline[cat] {
				return fmt.Errorf("verify: %v bundling counters diverged: online %+v offline %+v",
					cat, got, offline[cat])
			}
		}
	}
	if offline != nil {
		fmt.Println("verify: bundling counters identical to offline analysis")
	}
	return nil
}

func fmtSeconds(s float64) string {
	if s <= 0 {
		return "n/a"
	}
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// server wires the engine into the HTTP API.
type server struct {
	engine *ingest.Engine
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/swarm/{id}", s.handleSwarm)
	mux.HandleFunc("GET /v1/availability/cdf", s.handleCDF)
	mux.HandleFunc("GET /v1/bundling/summary", s.handleBundling)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *server) handleSwarm(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad swarm id", http.StatusBadRequest)
		return
	}
	st, ok := s.engine.Swarm(id)
	if !ok {
		http.Error(w, "unknown swarm", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

type cdfResponse struct {
	Swarms     int                `json:"swarms"`
	FirstMonth map[string]float64 `json:"first_month_quantiles"`
	Full       map[string]float64 `json:"full_quantiles"`
	// ToleranceAbs is the sketch resolution: every quantile is within
	// this of the exact order statistic.
	ToleranceAbs float64                `json:"tolerance_abs"`
	Headlines    measure.StudyHeadlines `json:"headlines"`
}

func (s *server) handleCDF(w http.ResponseWriter, r *http.Request) {
	qs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}
	if arg := r.URL.Query().Get("q"); arg != "" {
		qs = qs[:0]
		for _, part := range strings.Split(arg, ",") {
			q, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || q < 0 || q > 1 {
				http.Error(w, "bad quantile list", http.StatusBadRequest)
				return
			}
			qs = append(qs, q)
		}
	}
	sum := s.engine.Summary()
	resp := cdfResponse{
		Swarms:       sum.StudySwarms,
		FirstMonth:   make(map[string]float64, len(qs)),
		Full:         make(map[string]float64, len(qs)),
		ToleranceAbs: sum.Full.Resolution(),
		Headlines:    sum.Headlines(),
	}
	for _, q := range qs {
		key := strconv.FormatFloat(q, 'g', -1, 64)
		resp.FirstMonth[key] = sum.FirstMonth.Quantile(q)
		resp.Full[key] = sum.Full.Quantile(q)
	}
	writeJSON(w, resp)
}

type bundlingCategory struct {
	Category             string  `json:"category"`
	Swarms               int     `json:"swarms"`
	Bundles              int     `json:"bundles"`
	BundleFraction       float64 `json:"bundle_fraction"`
	Collections          int     `json:"collections"`
	SeedlessAll          float64 `json:"seedless_all"`
	SeedlessBundles      float64 `json:"seedless_bundles"`
	MeanDownloadsAll     float64 `json:"mean_downloads_all"`
	MeanDownloadsBundles float64 `json:"mean_downloads_bundles"`
}

func (s *server) handleBundling(w http.ResponseWriter, r *http.Request) {
	sum := s.engine.Summary()
	cats := make([]trace.Category, 0, len(sum.Categories))
	for cat := range sum.Categories {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	out := struct {
		CensusSwarms int                `json:"census_swarms"`
		Categories   []bundlingCategory `json:"categories"`
	}{CensusSwarms: sum.CensusSwarms}
	for _, cat := range cats {
		cc := sum.Categories[cat]
		cmp := cc.Compare(cat)
		out.Categories = append(out.Categories, bundlingCategory{
			Category:             cat.String(),
			Swarms:               cc.Swarms,
			Bundles:              cc.Bundles,
			BundleFraction:       cc.Extent(cat).BundleFraction(),
			Collections:          cc.Collections,
			SeedlessAll:          cmp.SeedlessAll,
			SeedlessBundles:      cmp.SeedlessBundles,
			MeanDownloadsAll:     cmp.MeanDownloadsAll,
			MeanDownloadsBundles: cmp.MeanDownloadsBundles,
		})
	}
	writeJSON(w, out)
}

// maxIngestBody bounds one /v1/ingest request (32 MiB ≈ 300k records);
// push clients batch far below this.
const maxIngestBody = 32 << 20

// handleIngest accepts JSONL ingest.Record lines and streams them into
// the engine through a request-scoped writer. The 200 acknowledgement
// means every record is in the engine's queues — state a graceful
// shutdown drains before exiting.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBody)
	dec := json.NewDecoder(r.Body)
	wr := s.engine.NewWriter()
	n := 0
	for {
		var rec ingest.Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			_ = wr.Flush()
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooBig.Limit),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("bad record %d: %v", n, err), http.StatusBadRequest)
			return
		}
		if err := wr.Observe(rec); err != nil {
			ingestUnavailable(w, err)
			return
		}
		n++
	}
	if err := wr.Flush(); err != nil {
		ingestUnavailable(w, err)
		return
	}
	writeJSON(w, map[string]int{"accepted": n})
}

// ingestUnavailable reports a write the draining engine refused; the
// retrying client treats 503 as temporary and replays the batch
// elsewhere/later, preserving at-least-once delivery.
func ingestUnavailable(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, ingest.ErrClosed) {
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.engine.Metrics()
	sum := s.engine.Summary()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "availd_uptime_seconds %g\n", m.UptimeSeconds)
	fmt.Fprintf(w, "availd_ingest_records_total %d\n", m.Records)
	fmt.Fprintf(w, "availd_ingest_applied_total %d\n", m.Applied)
	fmt.Fprintf(w, "availd_ingest_batches_total %d\n", m.Batches)
	fmt.Fprintf(w, "availd_ingest_shed_total{policy=%q} %d\n", m.OverflowPolicy, m.Shed)
	fmt.Fprintf(w, "availd_ingest_records_per_second %g\n", m.RecordsPerSecond)
	fmt.Fprintf(w, "availd_ingest_batch_size_mean %g\n", m.MeanBatchSize)
	fmt.Fprintf(w, "availd_ingest_latency_seconds{quantile=\"0.5\"} %g\n", m.LatencyP50)
	fmt.Fprintf(w, "availd_ingest_latency_seconds{quantile=\"0.99\"} %g\n", m.LatencyP99)
	for i, d := range m.ShardDepths {
		fmt.Fprintf(w, "availd_shard_queue_depth{shard=\"%d\"} %d\n", i, d)
	}
	fmt.Fprintf(w, "availd_swarms_total %d\n", sum.Swarms)
	fmt.Fprintf(w, "availd_census_swarms_total %d\n", sum.CensusSwarms)
	fmt.Fprintf(w, "availd_seeds_online %d\n", sum.SeedsOnline)
	fmt.Fprintf(w, "availd_leechers_online %d\n", sum.LeechersOnline)
	fmt.Fprintf(w, "availd_busy_periods_total %d\n", sum.BusyPeriods)
}
