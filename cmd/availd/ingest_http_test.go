package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swarmavail/internal/ingest"
)

// TestIngestOversizedBodyRejected pins the /v1/ingest body cap: a
// request over maxIngestBody gets 413 (the handler recognises the
// *http.MaxBytesError behind the scanner's wrapped error), and —
// because the handler parses the whole body before touching the engine
// — the failed request leaves engine state exactly as it was.
func TestIngestOversizedBodyRejected(t *testing.T) {
	e := ingest.New(ingest.Config{Shards: 2})
	defer e.Close()
	h := (&server{engine: e}).handler()

	// Seed some accepted state so "unchanged" is a real claim.
	var seed strings.Builder
	const seeded = 25
	for i := 0; i < seeded; i++ {
		fmt.Fprintf(&seed, `{"swarm_id":%d,"peer_id":1,"seed":true,"online":true,"t":0}`+"\n", i)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(seed.String())))
	if rec.Code != http.StatusOK {
		t.Fatalf("seed request: %d %s", rec.Code, rec.Body)
	}
	e.Flush()
	before := e.Summary().Events
	if before != seeded {
		t.Fatalf("seeded %d events, engine holds %d", seeded, before)
	}

	// One valid line, repeated past the cap: every byte the server
	// manages to read parses cleanly, so the only possible rejection is
	// the size limit itself.
	line := []byte(`{"swarm_id":999,"peer_id":2,"seed":true,"online":true,"t":1.5}` + "\n")
	big := bytes.Repeat(line, maxIngestBody/len(line)+2)
	if len(big) <= maxIngestBody {
		t.Fatalf("test bug: body %d bytes does not exceed cap %d", len(big), maxIngestBody)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got %d %s, want 413", rec.Code, rec.Body)
	}

	e.Flush()
	if after := e.Summary().Events; after != before {
		t.Fatalf("413 request changed engine state: %d events before, %d after", before, after)
	}
	if _, ok := e.Swarm(999); ok {
		t.Fatalf("swarm from the rejected request leaked into the engine")
	}
}

// TestIngestMalformedBodyLeavesStateUnchanged covers the 400 arm of the
// same transactional guarantee: valid lines before a malformed one are
// not applied.
func TestIngestMalformedBodyLeavesStateUnchanged(t *testing.T) {
	e := ingest.New(ingest.Config{Shards: 2})
	defer e.Close()
	h := (&server{engine: e}).handler()

	body := `{"swarm_id":1,"peer_id":1,"seed":true,"online":true,"t":0}` + "\n" +
		`{"swarm_id":2,"peer_id":` + "\n"
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: got %d %s, want 400", rec.Code, rec.Body)
	}
	e.Flush()
	if got := e.Summary().Events; got != 0 {
		t.Fatalf("rejected request applied %d events; want 0", got)
	}
}
