package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"swarmavail/internal/ingest"
)

// getHealth fetches /v1/healthz and returns (status code, "state" field).
func getHealth(t *testing.T, base string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	return resp.StatusCode, payload.State
}

// TestHealthzDrainTransition: a serving node answers 200 "serving";
// once shutdown starts it must answer 503 "draining" while the
// listener is still up (the window health-checking gateways use to
// stop routing here), and only then close.
func TestHealthzDrainTransition(t *testing.T) {
	e := ingest.New(ingest.Config{Shards: 2, BatchSize: 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() {
		served <- serve(ctx, e, options{listen: "127.0.0.1:0", drainGrace: 500 * time.Millisecond}, ready, nil)
	}()
	var base string
	select {
	case addr := <-ready:
		base = fmt.Sprintf("http://%s", addr)
	case err := <-served:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	if code, state := getHealth(t, base); code != http.StatusOK || state != "serving" {
		t.Fatalf("ready node: got %d %q, want 200 serving", code, state)
	}

	// Begin shutdown. During the drain grace the listener stays up and
	// readiness must flip to 503 draining.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	sawDraining := false
	for time.Now().Before(deadline) {
		code, state := getHealth(t, base)
		if code == http.StatusServiceUnavailable && state == "draining" {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("never observed 503 draining between shutdown signal and listener close")
	}

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after drain grace")
	}
	e.Close()
}
