package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swarmavail/internal/ingest"
	"swarmavail/internal/wal"
)

// startAvaild boots one serve() loop and returns its API and binary
// ingest addresses.
func startAvaild(t *testing.T, ctx context.Context, e *ingest.Engine, opts options) (api, bin net.Addr, served chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	binReady := make(chan net.Addr, 1)
	opts.binReady = binReady
	served = make(chan error, 1)
	go func() { served <- serve(ctx, e, opts, ready, nil) }()
	select {
	case api = <-ready:
	case err := <-served:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	if opts.ingestBin != "" {
		bin = <-binReady
	}
	return api, bin, served
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return body
}

// TestStreamIngestHTTPParityE2E boots two complete daemons — one fed
// over POST /v1/ingest (JSONL), one over the -ingest-bin binary stream
// — and requires their served /v1/summary and /v1/availability/cdf
// bodies to be byte-identical.
func TestStreamIngestHTTPParityE2E(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	jsonE := ingest.New(ingest.Config{Shards: 3})
	jsonAPI, _, jsonServed := startAvaild(t, ctx, jsonE, options{listen: "127.0.0.1:0"})
	binE := ingest.New(ingest.Config{Shards: 3})
	binAPI, binAddr, binServed := startAvaild(t, ctx, binE,
		options{listen: "127.0.0.1:0", ingestBin: "127.0.0.1:0"})

	recs := make([]ingest.Record, 0, 600)
	for swarm := 0; swarm < 75; swarm++ {
		for k := 0; k < 8; k++ {
			recs = append(recs, ingest.Record{
				SwarmID: swarm,
				PeerID:  uint64(k + 1),
				Seed:    k%3 == 0,
				Online:  k%5 != 4,
				Time:    float64(k) / 3,
			})
		}
	}
	// JSON path: acknowledged batches over HTTP.
	for i := 0; i < len(recs); i += 100 {
		end := i + 100
		if end > len(recs) {
			end = len(recs)
		}
		if err := pushBatch(fmt.Sprintf("http://%s/v1/ingest", jsonAPI), recs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// Binary path: the same records through a streaming client.
	c := ingest.NewStreamClient(ingest.StreamClientConfig{Addr: binAddr.String(), BatchSize: 73})
	for _, rec := range recs {
		if err := c.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	jsonE.Flush()
	binE.Flush()

	for _, path := range []string{"/v1/summary", "/v1/availability/cdf", "/v1/availability/cdf?q=0.1,0.5,0.9"} {
		jsonBody := fetch(t, fmt.Sprintf("http://%s%s", jsonAPI, path))
		binBody := fetch(t, fmt.Sprintf("http://%s%s", binAPI, path))
		if !bytes.Equal(jsonBody, binBody) {
			t.Errorf("%s diverged\n--- json ---\n%s\n--- binary ---\n%s", path, jsonBody, binBody)
		}
	}

	cancel()
	for _, served := range []chan error{jsonServed, binServed} {
		select {
		case err := <-served:
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not drain")
		}
	}
}

// TestStreamMetricsE2E pushes over the binary listener and asserts the
// ingest_stream_* series appear on /metrics with the right values —
// including the error counter after a deliberately corrupt frame.
func TestStreamMetricsE2E(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := ingest.New(ingest.Config{Shards: 2})
	api, bin, served := startAvaild(t, ctx, e,
		options{listen: "127.0.0.1:0", ingestBin: "127.0.0.1:0"})

	const frames, per = 7, 20
	c := ingest.NewStreamClient(ingest.StreamClientConfig{Addr: bin.String(), BatchSize: per})
	for f := 0; f < frames; f++ {
		for k := 0; k < per; k++ {
			if err := c.Observe(ingest.Record{SwarmID: f, PeerID: uint64(k + 1), Online: true, Time: float64(k)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A corrupt envelope must be rejected, counted, and change nothing.
	conn, err := net.Dial("tcp", bin.String())
	if err != nil {
		t.Fatal(err)
	}
	env := wal.AppendFrame(nil, []byte{0x01, 0xde, 0xad})
	env[len(env)-1] ^= 0xFF
	if _, err := conn.Write(env); err != nil {
		t.Fatal(err)
	}
	// Wait for the ERR frame so the scrape below observes the rejection.
	if _, err := wal.NewFrameReader(conn).Next(); err != nil {
		t.Fatalf("want ERR frame, got %v", err)
	}
	conn.Close()
	e.Flush()

	series := scrapeMetrics(t, api)
	if got := series["ingest_stream_frames_total"]; got != frames {
		t.Errorf("ingest_stream_frames_total = %v, want %d", got, frames)
	}
	if got := series["ingest_records_total"]; got != frames*per {
		t.Errorf("ingest_records_total = %v, want %d", got, frames*per)
	}
	if got := series["ingest_stream_conns_total"]; got != 2 {
		t.Errorf("ingest_stream_conns_total = %v, want 2", got)
	}
	if got := series["ingest_stream_errors_total"]; got != 1 {
		t.Errorf("ingest_stream_errors_total = %v, want 1", got)
	}
	env = wal.AppendFrame(nil, []byte{0x01})
	minBytes := float64(frames)*float64(len(env)) - 1 // every DATA frame is bigger than an empty one
	if got := series["ingest_stream_bytes_total"]; got < minBytes {
		t.Errorf("ingest_stream_bytes_total = %v, want > %v", got, minBytes)
	}
	fams := metricFamilies(series)
	for _, name := range []string{"ingest_stream_frames_total", "ingest_stream_bytes_total",
		"ingest_stream_conns_total", "ingest_stream_errors_total", "ingest_stream_ack_window"} {
		if !fams[name] {
			t.Errorf("no %s family in scrape", name)
		}
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain")
	}
}

// TestStreamCrashRecoveryChild is the re-exec target of
// TestStreamCrashRecoverySIGKILL: a durable availd with its binary
// listener up, killable without any drain.
func TestStreamCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("AVAILD_STREAM_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-recovery child; run via TestStreamCrashRecoverySIGKILL")
	}
	e, _, err := ingest.OpenDurable(
		ingest.Config{Shards: 3, BatchSize: 64},
		ingest.DurabilityConfig{Dir: dir}, // default fsync: acked ⇒ durable
	)
	if err != nil {
		t.Fatalf("child recover: %v", err)
	}
	binReady := make(chan net.Addr, 1)
	go func() {
		addr := <-binReady
		fmt.Printf("CHILD_BIN %s\n", addr)
	}()
	err = serve(context.Background(), e, options{
		listen:          "127.0.0.1:0",
		ingestBin:       "127.0.0.1:0",
		binReady:        binReady,
		dataDir:         dir,
		checkpointEvery: 75 * time.Millisecond,
	}, nil, nil)
	t.Fatalf("child serve returned before SIGKILL: %v", err)
}

// TestStreamCrashRecoverySIGKILL extends the SIGKILL harness to the
// binary stream: ONE StreamClient outlives three server crashes,
// redialing each new incarnation and resending its unacked window. The
// recovered engine must hold exactly the acknowledged ledger — keyed
// frames make the cross-crash resends exactly-once, so nothing is lost
// and nothing is double-applied.
func TestStreamCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash harness")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// The client persists across rounds; its dial func follows the
	// child's current address.
	var childBin atomic.Value // string
	childBin.Store("")
	c := ingest.NewStreamClient(ingest.StreamClientConfig{
		Source: "crash-monitor",
		Dial: func() (net.Conn, error) {
			addr, _ := childBin.Load().(string)
			if addr == "" {
				return nil, fmt.Errorf("child not up yet")
			}
			return net.DialTimeout("tcp", addr, time.Second)
		},
		BatchSize:    40,
		Window:       4,
		RetryBackoff: 20 * time.Millisecond,
		MaxAttempts:  200,
	})

	var ledger []ingest.Record
	mkBatch := func(round, seq int) []ingest.Record {
		recs := make([]ingest.Record, 40)
		for i := range recs {
			recs[i] = ingest.Record{
				SwarmID: (seq*len(recs) + i) % 97,
				PeerID:  uint64(round + 1),
				Seed:    i%3 != 2,
				Online:  (seq+i)%2 == 0,
				Time:    float64(round*1000+seq*10+i) / 100,
			}
		}
		return recs
	}

	for round := 0; round < 3; round++ {
		cmd := exec.Command(exe, "-test.run=^TestStreamCrashRecoveryChild$", "-test.v")
		cmd.Env = append(os.Environ(), "AVAILD_STREAM_CRASH_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if addr, ok := strings.CutPrefix(sc.Text(), "CHILD_BIN "); ok {
					addrCh <- addr
					break
				}
			}
			io.Copy(io.Discard, stdout)
		}()
		select {
		case addr := <-addrCh:
			childBin.Store(addr)
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("round %d: child never reported its stream address", round)
		}

		// Acknowledged frames only enter the ledger: each Flush blocks
		// until the server has journaled (and acked) every frame — across
		// redials if the previous round's kill left a broken connection.
		for seq := 0; seq < 8; seq++ {
			recs := mkBatch(round, seq)
			for _, rec := range recs {
				if err := c.Observe(rec); err != nil {
					t.Fatalf("round %d observe: %v", round, err)
				}
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("round %d flush %d: %v", round, seq, err)
			}
			ledger = append(ledger, recs...)
		}
		if r := c.Reconnects(); round > 0 && r == 0 {
			t.Fatalf("round %d: client never reconnected across the crash", round)
		}

		// Dwell past checkpoint ticks, then SIGKILL mid-everything.
		time.Sleep(200 * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()
	}

	e, rs, err := ingest.OpenDurable(ingest.Config{Shards: 3}, ingest.DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer e.Close()
	t.Logf("recovery: %+v; client sent %d frames, %d reconnects", rs, c.Sent(), c.Reconnects())

	ref := ingest.New(ingest.Config{Shards: 3})
	defer ref.Close()
	for i := 0; i < len(ledger); i += 40 {
		ops := make([]ingest.Op, 40)
		for k, rec := range ledger[i : i+40] {
			ops[k] = ingest.EventOp(rec)
		}
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()

	ids := make([]int, 0, 97)
	seen := map[int]bool{}
	for _, rec := range ledger {
		if !seen[rec.SwarmID] {
			seen[rec.SwarmID] = true
			ids = append(ids, rec.SwarmID)
		}
	}
	sort.Ints(ids)
	got := engineFingerprint(t, e, ids)
	want := engineFingerprint(t, ref, ids)
	if got != want {
		t.Fatalf("recovered state diverged from acked stream ledger after 3 SIGKILLs\n--- recovered ---\n%s--- reference ---\n%s", got, want)
	}
	if e.Summary().Events != uint64(len(ledger)) {
		t.Fatalf("recovered %d events, acked %d (lost or double-applied frames)", e.Summary().Events, len(ledger))
	}
}
