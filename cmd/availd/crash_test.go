package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"swarmavail/internal/ingest"
)

// TestCrashRecoveryChild is the re-exec target of
// TestCrashRecoverySIGKILL: a real availd serve loop on a durable
// engine, run in a separate process so the parent can SIGKILL it — no
// deferred cleanup, no graceful drain, exactly the failure the WAL
// exists for. It is skipped unless the harness environment is set.
func TestCrashRecoveryChild(t *testing.T) {
	dir := os.Getenv("AVAILD_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-recovery child; run via TestCrashRecoverySIGKILL")
	}
	e, _, err := ingest.OpenDurable(
		ingest.Config{Shards: 3, BatchSize: 64},
		ingest.DurabilityConfig{Dir: dir}, // default fsync: acked ⇒ durable
	)
	if err != nil {
		t.Fatalf("child recover: %v", err)
	}
	ready := make(chan net.Addr, 1)
	relay := make(chan net.Addr, 1)
	go func() {
		addr := <-relay
		// The parent reads this line to find the ephemeral port.
		fmt.Printf("CHILD_ADDR %s\n", addr)
		ready <- addr
	}()
	// A short checkpoint cadence so SIGKILL regularly lands on or near
	// an in-progress checkpoint — the rename-atomicity path gets
	// exercised, not just the bare WAL.
	err = serve(context.Background(), e, options{
		listen:          "127.0.0.1:0",
		dataDir:         dir,
		checkpointEvery: 75 * time.Millisecond,
	}, relay, nil)
	t.Fatalf("child serve returned before SIGKILL: %v", err)
	_ = ready
}

// pushBatch sends records as JSONL to /v1/ingest and returns nil only
// if the server acknowledged the whole batch.
func pushBatch(url string, recs []ingest.Record) error {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	resp, err := http.Post(url, "application/jsonl", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// engineFingerprint renders everything observable about the engine's
// analytical state for the given swarms: the merged summary, selected
// CDF quantiles, and every per-swarm snapshot.
func engineFingerprint(t *testing.T, e *ingest.Engine, ids []int) string {
	t.Helper()
	sum := e.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "swarms=%d study=%d seeds=%d leechers=%d busy=%d events=%d fullFM=%d mostlyUn=%d\n",
		sum.Swarms, sum.StudySwarms, sum.SeedsOnline, sum.LeechersOnline,
		sum.BusyPeriods, sum.Events, sum.FullyAvailableFirstMonth, sum.MostlyUnavailable)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		fmt.Fprintf(&b, "q%g=%v/%v\n", q, sum.FirstMonth.Quantile(q), sum.Full.Quantile(q))
	}
	for _, id := range ids {
		st, ok := e.Swarm(id)
		if !ok {
			fmt.Fprintf(&b, "swarm %d MISSING\n", id)
			continue
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "swarm %d %s\n", id, raw)
	}
	return b.String()
}

// TestCrashRecoverySIGKILL is the tentpole acceptance test: a child
// availd process is SIGKILLed — three times, each booting from the
// previous crash's debris — while a client pushes acknowledged batches.
// The recovered engine must contain exactly the acknowledged ledger:
// zero acked records lost, none double-applied, per-swarm availability
// byte-identical to an engine that never crashed.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash harness")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var ledger []ingest.Record
	mkBatch := func(round, seq int) []ingest.Record {
		recs := make([]ingest.Record, 40)
		for i := range recs {
			swarm := (seq*len(recs) + i) % 97 // revisit swarms across batches
			recs[i] = ingest.Record{
				SwarmID: swarm,
				PeerID:  uint64(round + 1),
				Seed:    i%3 != 2,
				Online:  (seq+i)%2 == 0,
				Time:    float64(round*1000+seq*10+i) / 100,
			}
		}
		return recs
	}

	for round := 0; round < 3; round++ {
		cmd := exec.Command(exe, "-test.run=^TestCrashRecoveryChild$", "-test.v")
		cmd.Env = append(os.Environ(), "AVAILD_CRASH_DIR="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if addr, ok := strings.CutPrefix(sc.Text(), "CHILD_ADDR "); ok {
					addrCh <- addr
					break
				}
			}
			// Keep draining so the child never blocks on a full pipe.
			io.Copy(io.Discard, stdout)
		}()
		var addr string
		select {
		case addr = <-addrCh:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("round %d: child never reported its address", round)
		}
		url := fmt.Sprintf("http://%s/v1/ingest", addr)

		// Sequential acknowledged pushes: after each ack the records are
		// the server's responsibility. The kill lands between acks, so
		// the ledger is exactly what the server owes us.
		for seq := 0; seq < 8; seq++ {
			recs := mkBatch(round, seq)
			if err := pushBatch(url, recs); err != nil {
				t.Fatalf("round %d push %d: %v", round, seq, err)
			}
			ledger = append(ledger, recs...)
		}

		// Dwell past a few checkpoint ticks so later rounds boot from a
		// checkpoint plus a WAL tail, not the journal alone.
		time.Sleep(200 * time.Millisecond)

		// SIGKILL: no drain, no checkpoint, no WAL close.
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()
	}

	// Recover in-process and compare against an engine that saw the
	// acked ledger with no crash in between.
	e, rs, err := ingest.OpenDurable(ingest.Config{Shards: 3}, ingest.DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer e.Close()
	if rs.CheckpointSeq == 0 && rs.ReplayedFrames == 0 {
		t.Fatalf("recovery found nothing: %+v", rs)
	}
	t.Logf("recovery: %+v", rs)

	ref := ingest.New(ingest.Config{Shards: 3})
	defer ref.Close()
	for i := 0; i < len(ledger); i += 40 {
		ops := make([]ingest.Op, 40)
		for k, rec := range ledger[i : i+40] {
			ops[k] = ingest.EventOp(rec)
		}
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()

	ids := make([]int, 0, 97)
	seen := map[int]bool{}
	for _, rec := range ledger {
		if !seen[rec.SwarmID] {
			seen[rec.SwarmID] = true
			ids = append(ids, rec.SwarmID)
		}
	}
	sort.Ints(ids)

	got := engineFingerprint(t, e, ids)
	want := engineFingerprint(t, ref, ids)
	if got != want {
		t.Fatalf("recovered state diverged from acked ledger after 3 SIGKILLs\n--- recovered ---\n%s--- reference ---\n%s", got, want)
	}
	if e.Summary().Events != uint64(len(ledger)) {
		t.Fatalf("recovered %d events, acked %d", e.Summary().Events, len(ledger))
	}
}
