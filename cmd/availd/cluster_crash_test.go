package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"swarmavail/internal/cluster"
	"swarmavail/internal/ingest"
)

// TestClusterNodeChild is the re-exec target of TestClusterCrashFailover:
// one real leader availd on a durable engine, in its own process so the
// parent can SIGKILL it mid-campaign. Skipped unless the harness
// environment is set.
func TestClusterNodeChild(t *testing.T) {
	dir := os.Getenv("AVAILD_CLUSTER_DIR")
	if dir == "" {
		t.Skip("cluster-crash child; run via TestClusterCrashFailover")
	}
	e, _, err := ingest.OpenDurable(
		ingest.Config{Shards: 2, BatchSize: 32},
		ingest.DurabilityConfig{Dir: dir},
	)
	if err != nil {
		t.Fatalf("child recover: %v", err)
	}
	relay := make(chan net.Addr, 1)
	go func() {
		fmt.Printf("CHILD_ADDR %s\n", <-relay)
	}()
	err = serve(context.Background(), e, options{
		listen:          "127.0.0.1:0",
		dataDir:         dir,
		checkpointEvery: 100 * time.Millisecond,
	}, relay, nil)
	t.Fatalf("child serve returned before SIGKILL: %v", err)
}

// clusterChild manages one re-exec'd leader process.
type clusterChild struct {
	cmd *exec.Cmd
	url string
}

func startClusterChild(t *testing.T, exe, dir string) *clusterChild {
	t.Helper()
	cmd := exec.Command(exe, "-test.run=^TestClusterNodeChild$", "-test.v")
	cmd.Env = append(os.Environ(), "AVAILD_CLUSTER_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "CHILD_ADDR "); ok {
				addrCh <- addr
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrCh:
		return &clusterChild{cmd: cmd, url: "http://" + addr}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("cluster child never reported its address")
		return nil
	}
}

func (c *clusterChild) kill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// fetchJSON GETs url and decodes the body into v.
func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestClusterCrashFailover is the tentpole acceptance test: a 3-node
// cluster (re-exec'd durable leaders, in-process followers shipping
// their WALs, one gateway fanning a campaign out) loses a leader to
// SIGKILL mid-campaign; the gateway promotes its follower, the rest of
// the campaign lands, and the merged cluster answers must be
// byte-identical to a single engine that saw the whole acked ledger.
func TestClusterCrashFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec cluster crash harness")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	const nNodes = 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Leaders: real availd processes on durable engines.
	children := make([]*clusterChild, nNodes)
	for i := range children {
		children[i] = startClusterChild(t, exe, t.TempDir())
		defer children[i].kill()
	}

	// Followers: in-process runFollower instances shipping each leader's
	// WAL, promotable over HTTP exactly as in production.
	followerURLs := make([]string, nNodes)
	followerDone := make([]chan error, nNodes)
	for i := range followerURLs {
		ready := make(chan net.Addr, 1)
		done := make(chan error, 1)
		opts := options{
			listen:     "127.0.0.1:0",
			dataDir:    t.TempDir(),
			follow:     children[i].url,
			followPoll: 25 * time.Millisecond,
			shards:     2,
			batch:      32,
		}
		go func() { done <- runFollower(ctx, opts, ready) }()
		select {
		case addr := <-ready:
			followerURLs[i] = "http://" + addr.String()
		case err := <-done:
			t.Fatalf("follower %d exited early: %v", i, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("follower %d never became ready", i)
		}
		followerDone[i] = done
	}

	// The gateway, in-process, with a fast failure detector.
	nodes := make([]cluster.NodeConfig, nNodes)
	for i := range nodes {
		nodes[i] = cluster.NodeConfig{
			Name:     fmt.Sprintf("node%d", i),
			URL:      children[i].url,
			Follower: followerURLs[i],
		}
	}
	g, err := cluster.NewGateway(cluster.GatewayConfig{
		Nodes:       nodes,
		HealthEvery: 50 * time.Millisecond,
		FailAfter:   2,
		SendPasses:  100,
		ClientConfig: ingest.HTTPClientConfig{
			MaxAttempts: 3,
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  50 * time.Millisecond,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		BaseURL:     gw.URL,
		MaxAttempts: 4,
		BackoffBase: 20 * time.Millisecond,
	})

	const (
		batches  = 16
		perBatch = 40
		swarms   = 97
	)
	var ledger []ingest.Record
	mkBatch := func(seq int) []ingest.Record {
		recs := make([]ingest.Record, perBatch)
		for i := range recs {
			recs[i] = ingest.Record{
				SwarmID: (seq*perBatch + i) % swarms,
				PeerID:  uint64(seq%5 + 1),
				Seed:    i%3 != 2,
				Online:  (seq+i)%2 == 0,
				Time:    float64(seq*100+i) / 50,
			}
		}
		return recs
	}
	push := func(seq int) {
		t.Helper()
		recs := mkBatch(seq)
		pushCtx, pushCancel := context.WithTimeout(ctx, 60*time.Second)
		defer pushCancel()
		if err := client.Push(pushCtx, recs); err != nil {
			t.Fatalf("push %d: %v", seq, err)
		}
		ledger = append(ledger, recs...)
	}

	// First half of the campaign against the healthy cluster.
	for seq := 0; seq < batches/2; seq++ {
		push(seq)
	}

	// Quiesce: every follower must have shipped everything its leader
	// acked, so the SIGKILL loses no acknowledged state.
	for i := 0; i < nNodes; i++ {
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := cluster.FetchWALStatus(http.DefaultClient, children[i].url)
			if err != nil {
				t.Fatalf("node %d wal status: %v", i, err)
			}
			var fst struct {
				Shipped uint64 `json:"shipped"`
			}
			if err := fetchJSON(followerURLs[i]+"/v1/follower/status", &fst); err != nil {
				t.Fatalf("follower %d status: %v", i, err)
			}
			if fst.Shipped == st.LastSeq {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d stuck at %d, leader at %d", i, fst.Shipped, st.LastSeq)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// SIGKILL node 0's leader: no drain, no final checkpoint. The
	// gateway's health loop must promote its follower, and the rest of
	// the campaign must land (pushes in flight ride the retry passes).
	children[0].kill()
	for seq := batches / 2; seq < batches; seq++ {
		push(seq)
	}
	if g.NodeURL(0) != followerURLs[0] {
		t.Fatalf("slot 0 routes to %s, want promoted follower %s", g.NodeURL(0), followerURLs[0])
	}

	// Reference: one engine, no cluster, no crash, same acked ledger.
	ref := ingest.New(ingest.Config{Shards: 3, BatchSize: 64})
	defer ref.Close()
	for i := 0; i < len(ledger); i += perBatch {
		ops := make([]ingest.Op, perBatch)
		for k, rec := range ledger[i : i+perBatch] {
			ops[k] = ingest.EventOp(rec)
		}
		if err := ref.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	ref.Flush()
	refSum := ref.Summary()

	fetch := func(path string) string {
		resp, err := http.Get(gw.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	render := func(write func(w http.ResponseWriter)) string {
		rec := httptest.NewRecorder()
		write(rec)
		return rec.Body.String()
	}

	if got, want := fetch("/v1/summary?consistent=1"),
		render(func(w http.ResponseWriter) { ingest.WriteSummary(w, refSum) }); got != want {
		t.Fatalf("post-failover merged /v1/summary diverged from the acked ledger\n--- cluster ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := fetch("/v1/availability/cdf?consistent=1"),
		render(func(w http.ResponseWriter) { ingest.WriteCDF(w, refSum, ingest.DefaultCDFQuantiles) }); got != want {
		t.Fatalf("post-failover merged /v1/availability/cdf diverged\n--- cluster ---\n%s--- reference ---\n%s", got, want)
	}
	if refSum.Events != uint64(len(ledger)) {
		t.Fatalf("reference saw %d events, ledger has %d", refSum.Events, len(ledger))
	}
	t.Logf("cluster survived SIGKILL: %d acked records, merged answers byte-identical", len(ledger))

	// Tear the followers down and surface any shutdown errors.
	cancel()
	for i, done := range followerDone {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("follower %d shutdown: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Errorf("follower %d never shut down", i)
		}
	}
}
