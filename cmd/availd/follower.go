package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"swarmavail/internal/cluster"
	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
)

// runFollower is availd's warm-standby mode (-follow): it ships the
// leader's WAL into -data-dir and serves a minimal control surface —
//
//	GET  /v1/healthz          503 {"state":"following"} until promoted
//	GET  /v1/follower/status  shipping watermark and leader
//	POST /v1/promote          recover shipped state, become a leader
//
// until a promotion (normally the cluster gateway's failure detector)
// swaps in the full availd API over the recovered engine. Promotion is
// a crash recovery of state the dead leader acknowledged: newest
// shipped checkpoint plus the shipped WAL tail, via ingest.OpenDurable.
func runFollower(ctx context.Context, opts options, ready chan<- net.Addr) error {
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	f, err := cluster.NewFollower(cluster.FollowerConfig{
		LeaderURL: opts.follow,
		Dir:       opts.dataDir,
		PollEvery: opts.followPoll,
		Metrics:   reg,
		Logf: func(format string, args ...any) {
			if opts.logger != nil {
				opts.logger.Info(fmt.Sprintf(format, args...))
			}
		},
	})
	if err != nil {
		return err
	}
	go f.Run(ctx)

	fs := &followerServer{opts: opts, follower: f, reg: reg}
	fs.handler.Store(handlerBox{obs.LogRequests(opts.logger, fs.standbyHandler())})

	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		f.Close()
		return err
	}
	srv := newHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fs.handler.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	fmt.Printf("availd: following %s on %s (data %s)\n", opts.follow, ln.Addr(), opts.dataDir)
	if opts.logger != nil {
		opts.logger.Info("following", "leader", opts.follow, "addr", ln.Addr().String(), "dir", opts.dataDir)
	}
	if ready != nil {
		ready <- ln.Addr()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		fs.shutdown()
		return err
	case <-ctx.Done():
	}
	fmt.Println("availd: signal received, stopping follower")
	if fs.promotedServer() != nil {
		fs.promotedServer().draining.Store(true)
		if opts.drainGrace > 0 {
			time.Sleep(opts.drainGrace)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "availd: follower shutdown: %v\n", err)
	}
	return fs.shutdown()
}

// handlerBox gives atomic.Value a single concrete type to hold, no
// matter what the wrapped handler's dynamic type is.
type handlerBox struct{ h http.Handler }

// followerServer owns the standby's swap-on-promote handler state.
type followerServer struct {
	opts     options
	follower *cluster.Follower
	reg      *obs.Registry

	handler atomic.Value // handlerBox, swapped on promotion

	mu       sync.Mutex
	promoted bool
	engine   *ingest.Engine
	server   *server
	ckptStop chan struct{}
	ckptDone chan struct{}
}

func (fs *followerServer) promotedServer() *server {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.server
}

// standbyHandler is the pre-promotion API.
func (fs *followerServer) standbyHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"state":"following"}`)
	})
	mux.HandleFunc("GET /v1/follower/status", func(w http.ResponseWriter, r *http.Request) {
		ingest.WriteJSON(w, map[string]any{
			"leader":     fs.opts.follow,
			"shipped":    fs.follower.Shipped(),
			"bootstraps": fs.follower.Bootstraps(),
		})
	})
	mux.HandleFunc("POST /v1/promote", fs.handlePromote)
	mux.Handle("GET /metrics", obs.MetricsHandler(fs.reg))
	mux.Handle("GET /debug/vars", obs.VarsHandler(fs.reg))
	// Everything else is the API this node will serve once promoted;
	// answer 503 so retrying clients keep trying rather than erroring.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "following; not promoted yet", http.StatusServiceUnavailable)
	})
	return mux
}

// handlePromote performs the failover: stop shipping, recover the
// shipped state, swap the full availd API in. 200 means the node is
// serving — the caller can route traffic the moment this returns.
func (fs *followerServer) handlePromote(w http.ResponseWriter, r *http.Request) {
	// The promoter stamps the successor epoch; a manual (unstamped)
	// promote bumps past whatever epoch the shipped data dir carries.
	var promoteEpoch uint64
	if stamp := r.Header.Get(cluster.EpochHeader); stamp != "" {
		e, err := strconv.ParseUint(stamp, 10, 64)
		if err != nil || e == 0 {
			http.Error(w, "bad "+cluster.EpochHeader+" header", http.StatusBadRequest)
			return
		}
		promoteEpoch = e
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.promoted {
		ingest.WriteJSON(w, map[string]string{"state": "serving"})
		return
	}
	start := time.Now()
	cfg := ingest.Config{Shards: fs.opts.shards, BatchSize: fs.opts.batch}
	e, rs, err := fs.follower.Promote(cfg)
	if err != nil {
		http.Error(w, fmt.Sprintf("promote: %v", err), http.StatusInternalServerError)
		return
	}
	reg := e.Registry()
	obs.RegisterProcessMetrics(reg)
	registerSummaryMetrics(reg, e)
	gate, err := cluster.OpenEpochGate(fs.opts.dataDir, reg, func(format string, args ...any) {
		if fs.opts.logger != nil {
			fs.opts.logger.Warn(fmt.Sprintf(format, args...))
		}
	})
	if err != nil {
		e.Close()
		http.Error(w, fmt.Sprintf("promote: epoch gate: %v", err), http.StatusInternalServerError)
		return
	}
	if promoteEpoch == 0 {
		promoteEpoch = gate.Epoch() + 1
	}
	if err := gate.Adopt(promoteEpoch); err != nil {
		e.Close()
		http.Error(w, fmt.Sprintf("promote: %v", err), http.StatusConflict)
		return
	}
	s := &server{engine: e, dataDir: fs.opts.dataDir, gate: gate}
	h := obs.InstrumentHandler(reg, "api", s.handler())
	fs.handler.Store(handlerBox{obs.LogRequests(fs.opts.logger, h)})
	fs.promoted, fs.engine, fs.server = true, e, s

	// The promoted node checkpoints on the leader's cadence.
	if fs.opts.dataDir != "" && fs.opts.checkpointEvery > 0 {
		fs.ckptStop, fs.ckptDone = make(chan struct{}), make(chan struct{})
		go func(stop, done chan struct{}) {
			defer close(done)
			t := time.NewTicker(fs.opts.checkpointEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if _, err := e.Checkpoint(); err != nil {
						fmt.Fprintf(os.Stderr, "availd: checkpoint: %v\n", err)
					}
				}
			}
		}(fs.ckptStop, fs.ckptDone)
	}

	fmt.Printf("availd: promoted in %v (checkpoint seq %d, %d swarms; replayed %d ops from %d frames)\n",
		time.Since(start).Round(time.Millisecond),
		rs.CheckpointSeq, rs.CheckpointSwarms, rs.ReplayedOps, rs.ReplayedFrames)
	if fs.opts.logger != nil {
		fs.opts.logger.Info("promoted",
			"checkpoint_seq", rs.CheckpointSeq,
			"checkpoint_swarms", rs.CheckpointSwarms,
			"replayed_frames", rs.ReplayedFrames,
			"replayed_ops", rs.ReplayedOps,
			"elapsed", time.Since(start))
	}
	ingest.WriteJSON(w, map[string]string{"state": "serving"})
}

// shutdown tears down whichever mode the process ended in: the shipping
// loop pre-promotion, or the engine (drained, final checkpoint)
// post-promotion.
func (fs *followerServer) shutdown() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !fs.promoted {
		return fs.follower.Close()
	}
	if fs.ckptStop != nil {
		close(fs.ckptStop)
		<-fs.ckptDone
	}
	fs.engine.Close()
	return finalCheckpoint(fs.engine, fs.opts)
}
