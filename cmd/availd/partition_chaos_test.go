package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"swarmavail/internal/cluster"
	"swarmavail/internal/faultnet"
	"swarmavail/internal/ingest"
	"swarmavail/internal/obs"
	"swarmavail/internal/wal"
)

// ackDropper wraps a leader's handler and, for armed idempotency keys,
// lets the request journal and apply normally but answers 503 — the
// lost-ack fault: the node has the batch, the sender doesn't know.
type ackDropper struct {
	inner http.Handler
	mu    sync.Mutex
	armed map[string]bool
	drops int
}

func (d *ackDropper) arm(source string, seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.armed == nil {
		d.armed = make(map[string]bool)
	}
	d.armed[source+"|"+strconv.FormatUint(seq, 10)] = true
}

func (d *ackDropper) count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drops
}

func (d *ackDropper) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	drop := false
	if r.Method == http.MethodPost && r.URL.Path == "/v1/ingest" {
		key := r.Header.Get(ingest.HeaderSource) + "|" + r.Header.Get(ingest.HeaderSeq)
		d.mu.Lock()
		if d.armed[key] {
			delete(d.armed, key)
			d.drops++
			drop = true
		}
		d.mu.Unlock()
	}
	if !drop {
		d.inner.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	d.inner.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
		return
	}
	http.Error(w, "injected ack loss", http.StatusServiceUnavailable)
}

// TestPartitionChaosFailover is the split-brain acceptance test: an
// asymmetric partition cuts the gateway off from slot 0's leader while
// the leader's follower (on clean transports) keeps shipping its WAL.
// The gateway promotes the follower under epoch 2 mid-campaign; the
// old leader stays alive, takes a zombie write, and is fenced the
// moment the partition heals. The verdict: zero acked-record loss,
// zero duplicate applies, post-fence writes rejected with 409, and the
// merged cluster answers byte-identical to a single engine that saw
// the acked ledger exactly once.
func TestPartitionChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("partition chaos harness")
	}
	fnet := faultnet.New(faultnet.Config{Seed: 7})
	faultHTTP := &http.Client{Transport: fnet.RoundTripper(nil)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Leaders: durable engines behind the real availd handler (epoch
	// gate included), as in-process listeners the fault layer can cut.
	mkLeader := func(dir string) (*ingest.Engine, http.Handler) {
		e, _, err := ingest.OpenDurable(
			ingest.Config{Shards: 2, BatchSize: 32},
			ingest.DurabilityConfig{Dir: dir, Fsync: wal.SyncNone},
		)
		if err != nil {
			t.Fatal(err)
		}
		gate, err := cluster.OpenEpochGate(dir, e.Registry(), t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		s := &server{engine: e, dataDir: dir, gate: gate}
		return e, s.handler()
	}
	dir0 := t.TempDir()
	e0, h0 := mkLeader(dir0)
	defer e0.Close()
	dropper := &ackDropper{inner: h0}
	leader0 := httptest.NewServer(dropper)
	defer leader0.Close()
	e1, h1 := mkLeader(t.TempDir())
	defer e1.Close()
	leader1 := httptest.NewServer(h1)
	defer leader1.Close()

	// Slot 0's follower: a real runFollower on clean transports, so it
	// keeps shipping the leader's WAL through the gateway-side partition
	// — the asymmetry that makes promotion lossless.
	fready := make(chan net.Addr, 1)
	fdone := make(chan error, 1)
	go func() {
		fdone <- runFollower(ctx, options{
			listen:     "127.0.0.1:0",
			dataDir:    t.TempDir(),
			follow:     leader0.URL,
			followPoll: 20 * time.Millisecond,
			shards:     2,
			batch:      32,
		}, fready)
	}()
	var fAddr net.Addr
	select {
	case fAddr = <-fready:
	case err := <-fdone:
		t.Fatalf("follower exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("follower never became ready")
	}
	followerURL := "http://" + fAddr.String()

	// The gateway reaches the nodes only through the fault network.
	reg := obs.NewRegistry()
	g, err := cluster.NewGateway(cluster.GatewayConfig{
		Nodes: []cluster.NodeConfig{
			{Name: "slot0", URL: leader0.URL, Follower: followerURL},
			{Name: "slot1", URL: leader1.URL},
		},
		HealthEvery:    50 * time.Millisecond,
		FailAfter:      2,
		SendPasses:     100,
		ProbeTimeout:   250 * time.Millisecond,
		PromoteTimeout: 10 * time.Second,
		HealthClient:   faultHTTP,
		ClientConfig: ingest.HTTPClientConfig{
			Client:      faultHTTP,
			MaxAttempts: 3,
			BackoffBase: 5 * time.Millisecond,
			BackoffCap:  25 * time.Millisecond,
		},
		Metrics: reg,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	client := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		BaseURL:     gw.URL,
		Source:      "campaign",
		MaxAttempts: 6,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
	})

	const (
		perBatch = 40
		swarms   = 97
	)
	var ledger []ingest.Record
	mkBatch := func(salt int) []ingest.Record {
		recs := make([]ingest.Record, perBatch)
		for i := range recs {
			recs[i] = ingest.Record{
				SwarmID: (salt*perBatch + i) % swarms,
				PeerID:  uint64(salt%5 + 1),
				Seed:    i%3 != 2,
				Online:  (salt+i)%2 == 0,
				Time:    float64(salt*100+i) / 50,
			}
		}
		return recs
	}
	push := func(salt int) {
		t.Helper()
		recs := mkBatch(salt)
		pushCtx, pushCancel := context.WithTimeout(ctx, 60*time.Second)
		defer pushCancel()
		if err := client.Push(pushCtx, recs); err != nil {
			t.Fatalf("push %d: %v", salt, err)
		}
		ledger = append(ledger, recs...)
	}

	// Phase A: healthy cluster, with one lost ack. The client's third
	// Push carries key ("campaign", 3); slot 0 journals its share, drops
	// the ack, and the gateway's retry of the same key must dedup there.
	dropper.arm(client.Source(), 3)
	for salt := 0; salt < 6; salt++ {
		push(salt)
	}
	if dropper.count() != 1 {
		t.Fatalf("injected %d ack losses, want 1", dropper.count())
	}
	if d := e0.Metrics().Deduped; d == 0 {
		t.Fatal("retry of the dropped-ack batch was not deduplicated on the leader")
	} else {
		t.Logf("leader 0 deduplicated %d records from the lost-ack retry", d)
	}

	// A keyed probe pushed straight to leader 0: in the ledger once. Its
	// swarms are homed on slot 0 and disjoint from the campaign's, so
	// direct delivery does not split a swarm across nodes.
	probe := make([]ingest.Record, perBatch)
	for i, id := 0, 200; i < perBatch; id++ {
		if g.Ring().Node(id) != 0 {
			continue
		}
		probe[i] = ingest.Record{SwarmID: id, PeerID: uint64(i%4 + 1), Seed: i%2 == 0, Online: i%3 != 0, Time: float64(i)}
		i++
	}
	direct0 := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		BaseURL:     leader0.URL,
		MaxAttempts: 3,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  25 * time.Millisecond,
	})
	if err := direct0.PushKeyed(ctx, "probe", 7, probe); err != nil {
		t.Fatalf("probe push: %v", err)
	}
	ledger = append(ledger, probe...)

	// Quiesce: the follower must hold everything leader 0 acked before
	// the partition, or promotion would lose acknowledged records.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cluster.FetchWALStatus(http.DefaultClient, leader0.URL)
		if err != nil {
			t.Fatalf("leader 0 wal status: %v", err)
		}
		var fst struct {
			Shipped uint64 `json:"shipped"`
		}
		if err := fetchJSON(followerURL+"/v1/follower/status", &fst); err != nil {
			t.Fatalf("follower status: %v", err)
		}
		if fst.Shipped == st.LastSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d, leader at %d", fst.Shipped, st.LastSeq)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Phase B: asymmetric partition — the gateway loses leader 0, the
	// follower (clean transport) does not. The campaign keeps going; the
	// first push below rides through the promotion.
	leader0Host := strings.TrimPrefix(leader0.URL, "http://")
	fnet.KillHost(leader0Host)
	for salt := 6; salt < 12; salt++ {
		push(salt)
	}

	var cl struct {
		Nodes []struct {
			Promoted bool   `json:"promoted"`
			URL      string `json:"url"`
			Epoch    uint64 `json:"epoch"`
		} `json:"nodes"`
	}
	if err := fetchJSON(gw.URL+"/v1/cluster", &cl); err != nil {
		t.Fatal(err)
	}
	if !cl.Nodes[0].Promoted || cl.Nodes[0].URL != followerURL || cl.Nodes[0].Epoch != 2 {
		t.Fatalf("slot 0 after partition: %+v, want promoted to %s at epoch 2", cl.Nodes[0], followerURL)
	}

	// Exactly-once across the failover: the probe key was journaled on
	// leader 0 and its dedup window travelled the WAL ship, so a retry
	// against the promoted follower must be deduplicated, not re-applied.
	directF := ingest.NewHTTPClient(ingest.HTTPClientConfig{
		BaseURL:     followerURL,
		MaxAttempts: 3,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  25 * time.Millisecond,
	})
	if err := directF.PushKeyed(ctx, "probe", 7, probe); err != nil {
		t.Fatalf("probe retry against promoted follower: %v", err)
	}
	fseries := scrapeMetrics(t, fAddr)
	if d := fseries["ingest_deduped_total"]; d < perBatch {
		t.Fatalf("promoted follower deduplicated %v records, want >= %d — the dedup window did not survive the WAL ship", d, perBatch)
	}
	if e := fseries["cluster_epoch"]; e != 2 {
		t.Fatalf("promoted follower at cluster_epoch %v, want 2", e)
	}

	// The zombie: leader 0 is partitioned from the gateway but alive,
	// and a confused monitor writes to it directly (clean transport).
	// The write is accepted — the node cannot know yet — but the record
	// is NOT acked cluster state and must never appear in merged reads.
	zombie := bytes.Buffer{}
	enc := json.NewEncoder(&zombie)
	for i := 0; i < 10; i++ {
		if err := enc.Encode(ingest.Record{SwarmID: 9000 + i, PeerID: 1, Seed: true, Online: true}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(leader0.URL+"/v1/ingest", "application/json", bytes.NewReader(zombie.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("zombie write before fencing: %d, want 200 (the node can't know yet)", resp.StatusCode)
	}

	// Phase C: heal. The gateway's health loop fences the retired leader
	// with an epoch-2 stamp; from then on even direct writes are 409.
	fnet.RestoreHost(leader0Host)
	deadline = time.Now().Add(15 * time.Second)
	for {
		if v, ok := e0.Registry().Value("cluster_fenced_requests_total"); ok && v > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retired leader was never fenced after the partition healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v, _ := e0.Registry().Value("cluster_epoch"); v != 2 {
		t.Fatalf("fenced leader at cluster_epoch %v, want 2 (demoted by the successor epoch)", v)
	}
	resp, err = http.Post(leader0.URL+"/v1/ingest", "application/json", bytes.NewReader(zombie.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-fence direct write: %d, want 409", resp.StatusCode)
	}
	if code, state := getHealth(t, leader0.URL); code != http.StatusServiceUnavailable || state != "fenced" {
		t.Fatalf("fenced leader healthz: %d %q, want 503 fenced", code, state)
	}
	if v, _ := reg.Value("gateway_slot_epoch", obs.L("node", "slot0")); v != 2 {
		t.Fatalf("gateway believes slot 0 epoch %v, want 2", v)
	}

	// Verdict: the merged cluster answers equal a single engine fed the
	// acked ledger exactly once. Any lost acked record, any duplicate
	// apply, and any zombie leakage breaks this byte equality.
	ref := ingest.New(ingest.Config{Shards: 3, BatchSize: 64})
	defer ref.Close()
	ops := make([]ingest.Op, len(ledger))
	for i, rec := range ledger {
		ops[i] = ingest.EventOp(rec)
	}
	if err := ref.Submit(ops); err != nil {
		t.Fatal(err)
	}
	ref.Flush()
	refSum := ref.Summary()
	if refSum.Events != uint64(len(ledger)) {
		t.Fatalf("reference saw %d events, ledger has %d", refSum.Events, len(ledger))
	}

	fetch := func(path string) string {
		resp, err := http.Get(gw.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	render := func(write func(w http.ResponseWriter)) string {
		rec := httptest.NewRecorder()
		write(rec)
		return rec.Body.String()
	}
	if got, want := fetch("/v1/summary?consistent=1"),
		render(func(w http.ResponseWriter) { ingest.WriteSummary(w, refSum) }); got != want {
		t.Fatalf("post-chaos merged /v1/summary diverged from the exactly-once ledger\n--- cluster ---\n%s--- reference ---\n%s", got, want)
	}
	if got, want := fetch("/v1/availability/cdf?consistent=1"),
		render(func(w http.ResponseWriter) { ingest.WriteCDF(w, refSum, ingest.DefaultCDFQuantiles) }); got != want {
		t.Fatalf("post-chaos merged /v1/availability/cdf diverged\n--- cluster ---\n%s--- reference ---\n%s", got, want)
	}
	t.Logf("split-brain chaos survived: %d acked records, fenced zombie, merged answers byte-identical", len(ledger))

	cancel()
	select {
	case err := <-fdone:
		if err != nil {
			t.Errorf("follower shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("follower never shut down")
	}
}
