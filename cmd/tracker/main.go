// Command tracker runs the HTTP BitTorrent tracker used by the
// repository's private swarms (announce on /announce, scrape on
// /scrape).
//
// Usage:
//
//	tracker [-addr 127.0.0.1:7070]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"swarmavail/internal/bittorrent/tracker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	flag.Parse()

	srv := tracker.NewServer()
	ln, closeFn, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tracker listening on http://%s/announce\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("tracker: shutting down")
	_ = closeFn()
}
