// Command tracker runs the BitTorrent tracker used by the repository's
// private swarms: HTTP announce/scrape on -addr, and optionally the
// BEP 15 UDP protocol on -udp. Both front ends serve the same swarm
// state, so peers may mix schemes freely.
//
// Usage:
//
//	tracker [-addr 127.0.0.1:7070] [-udp 127.0.0.1:7071]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"swarmavail/internal/bittorrent/tracker"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "HTTP listen address")
	udpAddr := flag.String("udp", "", "UDP (BEP 15) listen address (empty = HTTP only)")
	flag.Parse()

	srv := tracker.NewServer()
	ln, closeFn, err := srv.Serve(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tracker listening on http://%s/announce\n", ln.Addr())

	var closeUDP func() error
	if *udpAddr != "" {
		pc, cf, err := srv.ListenUDP(*udpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
			os.Exit(1)
		}
		closeUDP = cf
		fmt.Printf("tracker listening on udp://%s\n", pc.LocalAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("tracker: shutting down")
	if closeUDP != nil {
		_ = closeUDP()
	}
	_ = closeFn()
}
