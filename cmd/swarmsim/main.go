// Command swarmsim runs the block-level swarm simulator for a bundle of
// identical files and prints the resulting availability and download
// metrics, optionally with a peer timeline.
//
// Usage:
//
//	swarmsim -k 4 -lambda 0.0167 -size 4000 -peerup 50 -pubup 100 \
//	         -pubmode onoff -on 300 -off 900 -horizon 1200 [-timeline]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"swarmavail/internal/dist"
	"swarmavail/internal/plot"
	"swarmavail/internal/stats"
	"swarmavail/internal/swarm"
)

func main() {
	var (
		k        = flag.Int("k", 1, "bundle size (number of identical files)")
		lambda   = flag.Float64("lambda", 1.0/60, "peer arrival rate per file (1/s)")
		size     = flag.Float64("size", 4000, "file size (KB)")
		peerUp   = flag.Float64("peerup", 50, "peer upload capacity (KB/s); 0 = BitTyrant distribution")
		pubUp    = flag.Float64("pubup", 100, "publisher upload capacity (KB/s)")
		pubMode  = flag.String("pubmode", "onoff", "publisher mode: always, onoff, first")
		onMean   = flag.Float64("on", 300, "mean publisher on time (s)")
		offMean  = flag.Float64("off", 900, "mean publisher off time (s)")
		horizon  = flag.Float64("horizon", 1200, "arrival horizon (s)")
		drain    = flag.Float64("drain", 12000, "extra time to let stragglers finish (s)")
		linger   = flag.Float64("linger", 0, "mean seeding time after completion (s)")
		lag      = flag.Float64("lag", 15, "departure lag after completion (s)")
		seed     = flag.Int64("seed", 1, "random seed")
		timeline = flag.Bool("timeline", false, "render the peer timeline")
	)
	flag.Parse()

	files := make([]swarm.FileSpec, *k)
	for i := range files {
		files[i] = swarm.FileSpec{SizeKB: *size, Lambda: *lambda}
	}
	var upload dist.Dist = dist.Deterministic{Value: *peerUp}
	if *peerUp == 0 {
		upload = dist.BitTyrantUploadCapacities()
	}
	cfg := swarm.Config{
		Seed:                *seed,
		Files:               files,
		PeerUpload:          upload,
		PublisherUploadKBps: *pubUp,
		LingerMeanSeconds:   *linger,
		DepartureLagSeconds: *lag,
		ArrivalCutoff:       *horizon,
		Horizon:             *horizon + *drain,
	}
	switch *pubMode {
	case "always":
		cfg.PublisherMode = swarm.PublisherAlwaysOn
	case "onoff":
		cfg.PublisherMode = swarm.PublisherOnOff
		cfg.PublisherOn = dist.NewExponentialFromMean(*onMean)
		cfg.PublisherOff = dist.NewExponentialFromMean(*offMean)
	case "first":
		cfg.PublisherMode = swarm.PublisherUntilFirstCompletion
	default:
		fmt.Fprintf(os.Stderr, "swarmsim: unknown publisher mode %q\n", *pubMode)
		os.Exit(2)
	}

	res, err := swarm.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swarmsim: %v\n", err)
		os.Exit(1)
	}

	var acc stats.Accumulator
	acc.AddAll(res.DownloadTimes())
	fmt.Printf("bundle K=%d, aggregate λ=%.4g /s, %d pieces, horizon %g s (+%g s drain)\n",
		*k, cfg.AggregateLambda(), res.TotalPieces, *horizon, *drain)
	fmt.Printf("  arrivals:              %d\n", len(res.Records))
	fmt.Printf("  completed:             %d\n", res.CompletedCount())
	if acc.N() > 0 {
		fmt.Printf("  mean download time:    %.0f s (± %.0f, 95%% CI)\n", acc.Mean(), acc.CI95())
		med, _ := stats.Median(res.DownloadTimes())
		fmt.Printf("  median download time:  %.0f s\n", med)
	}
	fmt.Printf("  publisher availability: %.3f\n", res.PublisherAvailabilityFraction())
	fmt.Printf("  content availability:   %.3f\n", res.AvailabilityFraction())

	if *timeline {
		tl := &plot.Timeline{Title: "peer timeline", Horizon: res.Horizon}
		for _, s := range res.PublisherSessions {
			tl.Spans = append(tl.Spans, plot.Span{Label: "pub", Start: s.Start, End: s.End, Thick: true})
		}
		for _, p := range res.Records {
			tl.Spans = append(tl.Spans, plot.Span{
				Label: fmt.Sprintf("p%03d", p.ID),
				Start: p.Arrive,
				End:   p.Depart,
				Open:  math.IsInf(p.Depart, 1),
			})
		}
		plot.SortSpansByStart(tl.Spans)
		if err := tl.Render(os.Stdout, 80); err != nil {
			fmt.Fprintf(os.Stderr, "swarmsim: %v\n", err)
			os.Exit(1)
		}
	}
}
